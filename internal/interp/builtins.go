package interp

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"clgen/internal/clc"
)

// callBuiltin dispatches an OpenCL built-in function call.
func (c *wiCtx) callBuiltin(x *clc.CallExpr) (Value, error) {
	name := x.Fun
	// Work-item queries take a literal-int dimension argument.
	switch name {
	case "get_global_id", "get_local_id", "get_group_id",
		"get_global_size", "get_local_size", "get_num_groups", "get_global_offset":
		dim := 0
		if len(x.Args) > 0 {
			v, err := c.evalExpr(x.Args[0])
			if err != nil {
				return Value{}, err
			}
			dim = int(v.Int())
		}
		if dim < 0 || dim > 2 {
			return IntValue(clc.ULong, 0), nil
		}
		switch name {
		case "get_global_id":
			return IntValue(clc.ULong, c.gid[dim]), nil
		case "get_local_id":
			return IntValue(clc.ULong, c.lid[dim]), nil
		case "get_group_id":
			return IntValue(clc.ULong, c.grp[dim]), nil
		case "get_global_size":
			return IntValue(clc.ULong, c.gsize[dim]), nil
		case "get_local_size":
			return IntValue(clc.ULong, c.lsize[dim]), nil
		case "get_num_groups":
			return IntValue(clc.ULong, c.ngrp[dim]), nil
		default: // get_global_offset
			return IntValue(clc.ULong, 0), nil
		}
	case "get_work_dim":
		dims := int64(1)
		if c.gsize[1] > 1 {
			dims = 2
		}
		if c.gsize[2] > 1 {
			dims = 3
		}
		return IntValue(clc.UInt, dims), nil
	case "barrier", "work_group_barrier", "mem_fence", "read_mem_fence", "write_mem_fence":
		// Evaluate the flags argument for side effects.
		for _, a := range x.Args {
			if _, err := c.evalExpr(a); err != nil {
				return Value{}, err
			}
		}
		c.prof.Barriers++
		if name == "barrier" || name == "work_group_barrier" {
			if c.yield != nil {
				if err := c.yield(); err != nil {
					return Value{}, err
				}
			}
		}
		return Value{}, nil
	case "printf":
		for _, a := range x.Args {
			if _, err := c.evalExpr(a); err != nil {
				return Value{}, err
			}
		}
		return IntValue(clc.Int, 0), nil
	case "prefetch", "wait_group_events":
		for _, a := range x.Args {
			if _, err := c.evalExpr(a); err != nil {
				return Value{}, err
			}
		}
		return Value{}, nil
	}

	// Atomics.
	if b := clc.LookupBuiltin(name); b != nil && b.Atomic {
		return c.callAtomic(name, x.Args)
	}

	// Evaluate arguments once for everything below.
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := c.evalExpr(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}

	// Conversions: convert_T / as_T.
	if t, ok := clc.ConversionTarget(name); ok {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("interp: %s takes 1 argument", name)
		}
		if strings.HasPrefix(name, "as_") {
			return bitReinterpret(args[0], t)
		}
		return Convert(args[0], t)
	}

	// vloadN / vstoreN.
	if n, ok := clc.VectorWidthOfName(name); ok {
		if strings.HasPrefix(name, "vload") {
			return c.vload(n, args)
		}
		return Value{}, c.vstore(n, args)
	}

	// async copies: perform synchronously.
	if name == "async_work_group_copy" || name == "async_work_group_strided_copy" {
		return c.asyncCopy(name, args)
	}

	if fn, ok := mathBuiltins[name]; ok {
		v, err := fn(c, args)
		if err != nil {
			return Value{}, fmt.Errorf("interp: %s: %w", name, err)
		}
		c.countArith(v.Kind, max(v.Width, 1))
		return v, nil
	}
	return Value{}, fmt.Errorf("interp: unimplemented builtin %q", name)
}

func (c *wiCtx) callAtomic(name string, argExprs []clc.Expr) (Value, error) {
	if len(argExprs) == 0 {
		return Value{}, fmt.Errorf("interp: %s needs a pointer argument", name)
	}
	pv, err := c.evalExpr(argExprs[0])
	if err != nil {
		return Value{}, err
	}
	if !pv.IsPointer() {
		return Value{}, fmt.Errorf("interp: %s on non-pointer", name)
	}
	p := pv.Ptr
	old, _, err := p.Buf.loadScalar(p.Off)
	if err != nil {
		return Value{}, err
	}
	c.prof.Atomics++
	var operand int64
	if len(argExprs) > 1 {
		v, err := c.evalExpr(argExprs[1])
		if err != nil {
			return Value{}, err
		}
		operand = v.Int()
	}
	base := strings.TrimPrefix(strings.TrimPrefix(name, "atomic_"), "atom_")
	nv := old
	switch base {
	case "add":
		nv = old + operand
	case "sub":
		nv = old - operand
	case "inc":
		nv = old + 1
	case "dec":
		nv = old - 1
	case "xchg":
		nv = operand
	case "min":
		if operand < old {
			nv = operand
		}
	case "max":
		if operand > old {
			nv = operand
		}
	case "and":
		nv = old & operand
	case "or":
		nv = old | operand
	case "xor":
		nv = old ^ operand
	case "cmpxchg":
		var val int64
		if len(argExprs) > 2 {
			v, err := c.evalExpr(argExprs[2])
			if err != nil {
				return Value{}, err
			}
			val = v.Int()
		}
		if old == operand {
			nv = val
		}
	default:
		return Value{}, fmt.Errorf("interp: unknown atomic %q", name)
	}
	if err := p.Buf.storeScalar(p.Off, nv, float64(nv)); err != nil {
		return Value{}, err
	}
	kind := clc.Int
	if st, ok := p.Elem.(*clc.ScalarType); ok {
		kind = st.Kind
	}
	return IntValue(kind, old), nil
}

func (c *wiCtx) vload(n int, args []Value) (Value, error) {
	if len(args) != 2 || !args[1].IsPointer() {
		return Value{}, fmt.Errorf("interp: vload%d(offset, pointer)", n)
	}
	p := args[1].Ptr
	off := args[0].Int() * int64(n)
	kind := elemKind(p.Elem)
	out := Value{Kind: kind, Width: n}
	for l := 0; l < n; l++ {
		i, f, err := p.Buf.loadScalar(p.Off + off + int64(l))
		if err != nil {
			return Value{}, err
		}
		s := Value{Kind: p.Buf.Kind, Width: 1}
		s.I[0], s.F[0] = i, f
		cs := ConvertScalar(s, kind)
		out.I[l], out.F[l] = cs.I[0], cs.F[0]
	}
	c.countMem(p.Buf.Space, n, false)
	return out, nil
}

func (c *wiCtx) vstore(n int, args []Value) error {
	if len(args) != 3 || !args[2].IsPointer() {
		return fmt.Errorf("interp: vstore%d(value, offset, pointer)", n)
	}
	p := args[2].Ptr
	off := args[1].Int() * int64(n)
	v := args[0]
	for l := 0; l < n; l++ {
		var lane Value
		if v.Width > 1 {
			lane = v.Lane(l % v.Width)
		} else {
			lane = v
		}
		cb := ConvertScalar(lane, p.Buf.Kind)
		if err := p.Buf.storeScalar(p.Off+off+int64(l), cb.I[0], cb.F[0]); err != nil {
			return err
		}
	}
	c.countMem(p.Buf.Space, n, true)
	return nil
}

func (c *wiCtx) asyncCopy(name string, args []Value) (Value, error) {
	if len(args) < 3 || !args[0].IsPointer() || !args[1].IsPointer() {
		return Value{}, fmt.Errorf("interp: %s(dst, src, n, ...)", name)
	}
	dst, src := args[0].Ptr, args[1].Ptr
	n := args[2].Int() * scalarSlots(dst.Elem)
	stride := int64(1)
	if name == "async_work_group_strided_copy" && len(args) > 3 {
		stride = args[3].Int()
		if stride < 1 {
			stride = 1
		}
	}
	for i := int64(0); i < n; i++ {
		iv, fv, err := src.Buf.loadScalar(src.Off + i*stride)
		if err != nil {
			return Value{}, err
		}
		if err := dst.Buf.storeScalar(dst.Off+i, iv, fv); err != nil {
			return Value{}, err
		}
	}
	c.countMem(src.Buf.Space, int(n), false)
	c.countMem(dst.Buf.Space, int(n), true)
	return IntValue(clc.ULong, 0), nil
}

// bitReinterpret implements as_T for scalar float/int pairs bit-exactly and
// falls back to numeric conversion elsewhere.
func bitReinterpret(v Value, t clc.Type) (Value, error) {
	st, isScalar := t.(*clc.ScalarType)
	if isScalar && v.Width <= 1 {
		switch {
		case st.Kind == clc.Float && !v.Kind.IsFloat():
			return FloatValue(clc.Float, float64(math.Float32frombits(uint32(v.I[0])))), nil
		case st.Kind.IsInteger() && (v.Kind == clc.Float || v.Kind == clc.Half):
			return IntValue(st.Kind, int64(math.Float32bits(float32(v.F[0])))), nil
		case st.Kind == clc.Double && !v.Kind.IsFloat():
			return FloatValue(clc.Double, math.Float64frombits(uint64(v.I[0]))), nil
		case st.Kind.IsInteger() && v.Kind == clc.Double:
			return IntValue(st.Kind, int64(math.Float64bits(v.F[0]))), nil
		}
	}
	return Convert(v, t)
}

// mathFn implements one math-family builtin over evaluated arguments.
type mathFn func(c *wiCtx, args []Value) (Value, error)

// laneUnary lifts a float function lane-wise.
func laneUnary(f func(float64) float64) mathFn {
	return func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("want 1 argument")
		}
		return mapLanes1(args[0], f), nil
	}
}

func laneBinary(f func(a, b float64) float64) mathFn {
	return func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 2 {
			return Value{}, fmt.Errorf("want 2 arguments")
		}
		return mapLanes2(args[0], args[1], f), nil
	}
}

func laneTernary(f func(a, b, x float64) float64) mathFn {
	return func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 3 {
			return Value{}, fmt.Errorf("want 3 arguments")
		}
		return mapLanes3(args[0], args[1], args[2], f), nil
	}
}

func mapLanes1(v Value, f func(float64) float64) Value {
	w := max(v.Width, 1)
	kind := floatKindFor(v.Kind)
	out := Value{Kind: kind, Width: w}
	for l := 0; l < w; l++ {
		r := f(v.Lane(l).Float())
		if kind == clc.Float {
			r = float64(float32(r))
		}
		out.F[l] = r
		out.I[l] = int64(clampToInt64(r))
	}
	return out
}

func mapLanes2(a, b Value, f func(x, y float64) float64) Value {
	kind, w := promote(a, b)
	kind = floatKindFor(kind)
	av, bv := widen(a, kind, w), widen(b, kind, w)
	out := Value{Kind: kind, Width: w}
	for l := 0; l < w; l++ {
		r := f(av.F[l], bv.F[l])
		if kind == clc.Float {
			r = float64(float32(r))
		}
		out.F[l] = r
		out.I[l] = int64(clampToInt64(r))
	}
	return out
}

func mapLanes3(a, b, x Value, f func(p, q, r float64) float64) Value {
	kind, w := promote(a, b)
	k2, w2 := promote(x, Value{Kind: kind, Width: w})
	kind, w = k2, w2
	kind = floatKindFor(kind)
	av, bv, xv := widen(a, kind, w), widen(b, kind, w), widen(x, kind, w)
	out := Value{Kind: kind, Width: w}
	for l := 0; l < w; l++ {
		r := f(av.F[l], bv.F[l], xv.F[l])
		if kind == clc.Float {
			r = float64(float32(r))
		}
		out.F[l] = r
		out.I[l] = int64(clampToInt64(r))
	}
	return out
}

// floatKindFor maps integer kinds to float for math functions that always
// produce floating-point results.
func floatKindFor(k clc.ScalarKind) clc.ScalarKind {
	if k.IsFloat() {
		return k
	}
	return clc.Float
}

// intPreserving applies an integer function lane-wise, keeping the input
// kind (used by min/max/clamp/abs families on integer inputs).
func intLaneBinary(f func(a, b int64) int64) func(a, b Value) Value {
	return func(a, b Value) Value {
		kind, w := promote(a, b)
		av, bv := widen(a, kind, w), widen(b, kind, w)
		out := Value{Kind: kind, Width: w}
		for l := 0; l < w; l++ {
			out.I[l] = truncInt(kind, f(av.I[l], bv.I[l]))
			out.F[l] = float64(out.I[l])
		}
		return out
	}
}

var mathBuiltins map[string]mathFn

func init() {
	mathBuiltins = map[string]mathFn{
		"sqrt":    laneUnary(math.Sqrt),
		"rsqrt":   laneUnary(func(x float64) float64 { return 1 / math.Sqrt(x) }),
		"cbrt":    laneUnary(math.Cbrt),
		"sin":     laneUnary(math.Sin),
		"cos":     laneUnary(math.Cos),
		"tan":     laneUnary(math.Tan),
		"asin":    laneUnary(math.Asin),
		"acos":    laneUnary(math.Acos),
		"atan":    laneUnary(math.Atan),
		"sinh":    laneUnary(math.Sinh),
		"cosh":    laneUnary(math.Cosh),
		"tanh":    laneUnary(math.Tanh),
		"asinh":   laneUnary(math.Asinh),
		"acosh":   laneUnary(math.Acosh),
		"atanh":   laneUnary(math.Atanh),
		"exp":     laneUnary(math.Exp),
		"exp2":    laneUnary(math.Exp2),
		"exp10":   laneUnary(func(x float64) float64 { return math.Pow(10, x) }),
		"expm1":   laneUnary(math.Expm1),
		"log":     laneUnary(math.Log),
		"log2":    laneUnary(math.Log2),
		"log10":   laneUnary(math.Log10),
		"log1p":   laneUnary(math.Log1p),
		"fabs":    laneUnary(math.Abs),
		"floor":   laneUnary(math.Floor),
		"ceil":    laneUnary(math.Ceil),
		"round":   laneUnary(math.Round),
		"trunc":   laneUnary(math.Trunc),
		"rint":    laneUnary(math.RoundToEven),
		"erf":     laneUnary(math.Erf),
		"erfc":    laneUnary(math.Erfc),
		"tgamma":  laneUnary(math.Gamma),
		"lgamma":  laneUnary(func(x float64) float64 { l, _ := math.Lgamma(x); return l }),
		"sign":    laneUnary(func(x float64) float64 { return signOf(x) }),
		"degrees": laneUnary(func(x float64) float64 { return x * 180 / math.Pi }),
		"radians": laneUnary(func(x float64) float64 { return x * math.Pi / 180 }),
		"sinpi":   laneUnary(func(x float64) float64 { return math.Sin(math.Pi * x) }),
		"cospi":   laneUnary(func(x float64) float64 { return math.Cos(math.Pi * x) }),
		"tanpi":   laneUnary(func(x float64) float64 { return math.Tan(math.Pi * x) }),

		"atan2":     laneBinary(math.Atan2),
		"pow":       laneBinary(math.Pow),
		"powr":      laneBinary(math.Pow),
		"fmod":      laneBinary(math.Mod),
		"remainder": laneBinary(math.Remainder),
		"fdim":      laneBinary(math.Dim),
		"copysign":  laneBinary(math.Copysign),
		"hypot":     laneBinary(math.Hypot),
		"nextafter": laneBinary(math.Nextafter),
		"maxmag": laneBinary(func(a, b float64) float64 {
			if math.Abs(a) >= math.Abs(b) {
				return a
			}
			return b
		}),
		"minmag": laneBinary(func(a, b float64) float64 {
			if math.Abs(a) <= math.Abs(b) {
				return a
			}
			return b
		}),
		"step": laneBinary(func(edge, x float64) float64 {
			if x < edge {
				return 0
			}
			return 1
		}),
		"ldexp": laneBinary(func(x, e float64) float64 { return math.Ldexp(x, int(e)) }),
		"pown":  laneBinary(math.Pow),
		"rootn": laneBinary(func(x, n float64) float64 { return math.Pow(x, 1/n) }),

		"mad": laneTernary(func(a, b, cc float64) float64 { return a*b + cc }),
		"fma": laneTernary(math.FMA),
		"mix": laneTernary(func(a, b, t float64) float64 { return a + (b-a)*t }),
		"smoothstep": laneTernary(func(e0, e1, x float64) float64 {
			t := (x - e0) / (e1 - e0)
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			return t * t * (3 - 2*t)
		}),
		"nan": laneUnary(func(x float64) float64 { return math.NaN() }),
	}

	// Integer-aware min/max/clamp/abs.
	mathBuiltins["min"] = genMinMax(false)
	mathBuiltins["max"] = genMinMax(true)
	mathBuiltins["fmin"] = laneBinary(math.Min)
	mathBuiltins["fmax"] = laneBinary(math.Max)
	mathBuiltins["clamp"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 3 {
			return Value{}, fmt.Errorf("want 3 arguments")
		}
		lo, err := mathBuiltins["max"](c, []Value{args[0], args[1]})
		if err != nil {
			return Value{}, err
		}
		return mathBuiltins["min"](c, []Value{lo, args[2]})
	}
	mathBuiltins["abs"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("want 1 argument")
		}
		v := args[0]
		if v.Kind.IsFloat() {
			return mapLanes1(v, math.Abs), nil
		}
		w := max(v.Width, 1)
		out := Value{Kind: v.Kind, Width: w}
		for l := 0; l < w; l++ {
			a := v.I[l]
			if a < 0 {
				a = -a
			}
			out.I[l] = a
			out.F[l] = float64(a)
		}
		return out, nil
	}
	mathBuiltins["abs_diff"] = wrapIntBinary(func(a, b int64) int64 {
		if a > b {
			return a - b
		}
		return b - a
	})
	mathBuiltins["add_sat"] = wrapIntBinary(func(a, b int64) int64 { return a + b })
	mathBuiltins["sub_sat"] = wrapIntBinary(func(a, b int64) int64 { return a - b })
	mathBuiltins["hadd"] = wrapIntBinary(func(a, b int64) int64 { return (a + b) >> 1 })
	mathBuiltins["rhadd"] = wrapIntBinary(func(a, b int64) int64 { return (a + b + 1) >> 1 })
	mathBuiltins["mul24"] = wrapIntBinary(func(a, b int64) int64 { return (a & 0xFFFFFF) * (b & 0xFFFFFF) })
	mathBuiltins["mul_hi"] = wrapIntBinary(func(a, b int64) int64 {
		hi, _ := bits.Mul64(uint64(a), uint64(b))
		return int64(hi)
	})
	mathBuiltins["rotate"] = wrapIntBinary(func(a, b int64) int64 {
		return int64(bits.RotateLeft32(uint32(a), int(b)))
	})
	mathBuiltins["upsample"] = wrapIntBinary(func(a, b int64) int64 { return a<<16 | (b & 0xFFFF) })
	mathBuiltins["mad24"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 3 {
			return Value{}, fmt.Errorf("want 3 arguments")
		}
		m, err := mathBuiltins["mul24"](c, args[:2])
		if err != nil {
			return Value{}, err
		}
		return binaryOp(clc.ADD, m, args[2])
	}
	mathBuiltins["mad_hi"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 3 {
			return Value{}, fmt.Errorf("want 3 arguments")
		}
		m, err := mathBuiltins["mul_hi"](c, args[:2])
		if err != nil {
			return Value{}, err
		}
		return binaryOp(clc.ADD, m, args[2])
	}
	mathBuiltins["mad_sat"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 3 {
			return Value{}, fmt.Errorf("want 3 arguments")
		}
		m, err := binaryOp(clc.MUL, args[0], args[1])
		if err != nil {
			return Value{}, err
		}
		return binaryOp(clc.ADD, m, args[2])
	}
	mathBuiltins["popcount"] = wrapIntUnary(func(a int64) int64 { return int64(bits.OnesCount64(uint64(a))) })
	mathBuiltins["clz"] = wrapIntUnary(func(a int64) int64 { return int64(bits.LeadingZeros32(uint32(a))) })
	mathBuiltins["ctz"] = wrapIntUnary(func(a int64) int64 { return int64(bits.TrailingZeros32(uint32(a))) })

	// Geometric.
	mathBuiltins["dot"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 2 {
			return Value{}, fmt.Errorf("want 2 arguments")
		}
		a, b := args[0], args[1]
		w := max(a.Width, 1)
		var s float64
		for l := 0; l < w; l++ {
			s += a.Lane(l).Float() * b.Lane(l%max(b.Width, 1)).Float()
		}
		return FloatValue(floatKindFor(a.Kind), s), nil
	}
	mathBuiltins["length"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("want 1 argument")
		}
		v := args[0]
		var s float64
		for l := 0; l < max(v.Width, 1); l++ {
			f := v.Lane(l).Float()
			s += f * f
		}
		return FloatValue(floatKindFor(v.Kind), math.Sqrt(s)), nil
	}
	mathBuiltins["fast_length"] = mathBuiltins["length"]
	mathBuiltins["distance"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 2 {
			return Value{}, fmt.Errorf("want 2 arguments")
		}
		d, err := binaryOp(clc.SUB, args[0], args[1])
		if err != nil {
			return Value{}, err
		}
		return mathBuiltins["length"](c, []Value{d})
	}
	mathBuiltins["fast_distance"] = mathBuiltins["distance"]
	mathBuiltins["normalize"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("want 1 argument")
		}
		l, err := mathBuiltins["length"](c, args)
		if err != nil {
			return Value{}, err
		}
		if l.Float() == 0 {
			return args[0], nil
		}
		return binaryOp(clc.DIV, args[0], l)
	}
	mathBuiltins["fast_normalize"] = mathBuiltins["normalize"]
	mathBuiltins["cross"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 2 {
			return Value{}, fmt.Errorf("want 2 arguments")
		}
		a, b := args[0], args[1]
		kind := floatKindFor(a.Kind)
		w := max(a.Width, 3)
		out := Value{Kind: kind, Width: w}
		ax, ay, az := a.Lane(0).Float(), a.Lane(1%a.Width).Float(), a.Lane(2%a.Width).Float()
		bx, by, bz := b.Lane(0).Float(), b.Lane(1%max(b.Width, 1)).Float(), b.Lane(2%max(b.Width, 1)).Float()
		out.F[0] = ay*bz - az*by
		out.F[1] = az*bx - ax*bz
		out.F[2] = ax*by - ay*bx
		return out, nil
	}

	// Relational.
	mathBuiltins["isnan"] = boolLaneUnary(math.IsNaN)
	mathBuiltins["isinf"] = boolLaneUnary(func(x float64) bool { return math.IsInf(x, 0) })
	mathBuiltins["isfinite"] = boolLaneUnary(func(x float64) bool { return !math.IsInf(x, 0) && !math.IsNaN(x) })
	mathBuiltins["isnormal"] = boolLaneUnary(func(x float64) bool { return x != 0 && !math.IsInf(x, 0) && !math.IsNaN(x) })
	mathBuiltins["signbit"] = boolLaneUnary(func(x float64) bool { return math.Signbit(x) })
	cmp2 := func(f func(a, b float64) bool) mathFn {
		return func(c *wiCtx, args []Value) (Value, error) {
			if len(args) != 2 {
				return Value{}, fmt.Errorf("want 2 arguments")
			}
			kind, w := promote(args[0], args[1])
			av, bv := widen(args[0], kind, w), widen(args[1], kind, w)
			out := Value{Kind: clc.Int, Width: w}
			for l := 0; l < w; l++ {
				out.I[l] = boolToInt(f(av.Lane(l).Float(), bv.Lane(l).Float()))
				out.F[l] = float64(out.I[l])
			}
			return out, nil
		}
	}
	mathBuiltins["isequal"] = cmp2(func(a, b float64) bool { return a == b })
	mathBuiltins["isnotequal"] = cmp2(func(a, b float64) bool { return a != b })
	mathBuiltins["isgreater"] = cmp2(func(a, b float64) bool { return a > b })
	mathBuiltins["isgreaterequal"] = cmp2(func(a, b float64) bool { return a >= b })
	mathBuiltins["isless"] = cmp2(func(a, b float64) bool { return a < b })
	mathBuiltins["islessequal"] = cmp2(func(a, b float64) bool { return a <= b })
	mathBuiltins["islessgreater"] = cmp2(func(a, b float64) bool { return a != b })
	mathBuiltins["isordered"] = cmp2(func(a, b float64) bool { return !math.IsNaN(a) && !math.IsNaN(b) })
	mathBuiltins["isunordered"] = cmp2(func(a, b float64) bool { return math.IsNaN(a) || math.IsNaN(b) })
	mathBuiltins["any"] = func(c *wiCtx, args []Value) (Value, error) {
		v := args[0]
		for l := 0; l < max(v.Width, 1); l++ {
			if v.Lane(l).Bool() {
				return IntValue(clc.Int, 1), nil
			}
		}
		return IntValue(clc.Int, 0), nil
	}
	mathBuiltins["all"] = func(c *wiCtx, args []Value) (Value, error) {
		v := args[0]
		for l := 0; l < max(v.Width, 1); l++ {
			if !v.Lane(l).Bool() {
				return IntValue(clc.Int, 0), nil
			}
		}
		return IntValue(clc.Int, 1), nil
	}
	mathBuiltins["select"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 3 {
			return Value{}, fmt.Errorf("want 3 arguments")
		}
		a, b, sel := args[0], args[1], args[2]
		kind, w := promote(a, b)
		av, bv := widen(a, kind, w), widen(b, kind, w)
		sv := widen(sel, sel.Kind, w)
		out := Value{Kind: kind, Width: w}
		for l := 0; l < w; l++ {
			src := av
			if sv.Lane(l).Bool() {
				src = bv
			}
			out.I[l], out.F[l] = src.I[l], src.F[l]
		}
		return out, nil
	}
	mathBuiltins["bitselect"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 3 {
			return Value{}, fmt.Errorf("want 3 arguments")
		}
		a, b, m := args[0], args[1], args[2]
		kind, w := promote(a, b)
		av, bv, mv := widen(a, kind, w), widen(b, kind, w), widen(m, kind, w)
		out := Value{Kind: kind, Width: w}
		for l := 0; l < w; l++ {
			out.I[l] = (av.I[l] &^ mv.I[l]) | (bv.I[l] & mv.I[l])
			out.F[l] = float64(out.I[l])
		}
		return out, nil
	}
	mathBuiltins["shuffle"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 2 {
			return Value{}, fmt.Errorf("want 2 arguments")
		}
		src, mask := args[0], args[1]
		w := max(mask.Width, 1)
		out := Value{Kind: src.Kind, Width: w}
		for l := 0; l < w; l++ {
			idx := int(mask.I[l]) % max(src.Width, 1)
			if idx < 0 {
				idx = 0
			}
			out.I[l], out.F[l] = src.I[idx], src.F[idx]
		}
		return out, nil
	}
	mathBuiltins["shuffle2"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 3 {
			return Value{}, fmt.Errorf("want 3 arguments")
		}
		a, b, mask := args[0], args[1], args[2]
		wa := max(a.Width, 1)
		w := max(mask.Width, 1)
		out := Value{Kind: a.Kind, Width: w}
		for l := 0; l < w; l++ {
			idx := int(mask.I[l]) % (wa * 2)
			if idx < 0 {
				idx = 0
			}
			if idx < wa {
				out.I[l], out.F[l] = a.I[idx], a.F[idx]
			} else {
				out.I[l], out.F[l] = b.I[idx-wa], b.F[idx-wa]
			}
		}
		return out, nil
	}

	// Pointer-out-parameter functions.
	mathBuiltins["fract"] = ptrOutBinary(func(x float64) (float64, float64) {
		fl := math.Floor(x)
		return x - fl, fl
	})
	mathBuiltins["modf"] = ptrOutBinary(func(x float64) (float64, float64) {
		ip, fp := math.Modf(x)
		return fp, ip
	})
	mathBuiltins["sincos"] = ptrOutBinary(func(x float64) (float64, float64) {
		s, cc := math.Sincos(x)
		return s, cc
	})
	mathBuiltins["frexp"] = ptrOutBinary(func(x float64) (float64, float64) {
		fr, e := math.Frexp(x)
		return fr, float64(e)
	})
	mathBuiltins["remquo"] = func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 3 || !args[2].IsPointer() {
			return Value{}, fmt.Errorf("remquo(x, y, ptr)")
		}
		r := math.Remainder(args[0].Float(), args[1].Float())
		q := math.Round((args[0].Float() - r) / args[1].Float())
		p := args[2].Ptr
		if err := p.Buf.storeScalar(p.Off, int64(q), q); err != nil {
			return Value{}, err
		}
		return FloatValue(clc.Float, r), nil
	}

	// native_* / half_* aliases.
	for _, base := range []string{"sqrt", "rsqrt", "sin", "cos", "tan", "exp",
		"exp2", "log", "log2", "log10"} {
		if fn, ok := mathBuiltins[base]; ok {
			mathBuiltins["native_"+base] = fn
			mathBuiltins["half_"+base] = fn
		}
	}
	mathBuiltins["native_recip"] = laneUnary(func(x float64) float64 { return 1 / x })
	mathBuiltins["half_recip"] = mathBuiltins["native_recip"]
	mathBuiltins["native_divide"] = laneBinary(func(a, b float64) float64 { return a / b })
	mathBuiltins["half_divide"] = mathBuiltins["native_divide"]
	mathBuiltins["native_powr"] = laneBinary(math.Pow)
	mathBuiltins["half_powr"] = mathBuiltins["native_powr"]
}

func signOf(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

func genMinMax(isMax bool) mathFn {
	return func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 2 {
			return Value{}, fmt.Errorf("want 2 arguments")
		}
		a, b := args[0], args[1]
		kind, w := promote(a, b)
		av, bv := widen(a, kind, w), widen(b, kind, w)
		out := Value{Kind: kind, Width: w}
		for l := 0; l < w; l++ {
			var takeB bool
			if kind.IsFloat() {
				takeB = bv.F[l] > av.F[l] == isMax && bv.F[l] != av.F[l]
			} else if kind.IsUnsigned() {
				takeB = (uint64(bv.I[l]) > uint64(av.I[l])) == isMax && bv.I[l] != av.I[l]
			} else {
				takeB = (bv.I[l] > av.I[l]) == isMax && bv.I[l] != av.I[l]
			}
			src := av
			if takeB {
				src = bv
			}
			out.I[l], out.F[l] = src.I[l], src.F[l]
		}
		return out, nil
	}
}

func wrapIntBinary(f func(a, b int64) int64) mathFn {
	g := intLaneBinary(f)
	return func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 2 {
			return Value{}, fmt.Errorf("want 2 arguments")
		}
		return g(args[0], args[1]), nil
	}
}

func wrapIntUnary(f func(a int64) int64) mathFn {
	return func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("want 1 argument")
		}
		v := args[0]
		w := max(v.Width, 1)
		out := Value{Kind: v.Kind, Width: w}
		for l := 0; l < w; l++ {
			out.I[l] = truncInt(v.Kind, f(v.I[l]))
			out.F[l] = float64(out.I[l])
		}
		return out, nil
	}
}

func boolLaneUnary(f func(float64) bool) mathFn {
	return func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("want 1 argument")
		}
		v := args[0]
		w := max(v.Width, 1)
		out := Value{Kind: clc.Int, Width: w}
		for l := 0; l < w; l++ {
			out.I[l] = boolToInt(f(v.Lane(l).Float()))
			out.F[l] = float64(out.I[l])
		}
		return out, nil
	}
}

func ptrOutBinary(f func(x float64) (ret, out float64)) mathFn {
	return func(c *wiCtx, args []Value) (Value, error) {
		if len(args) != 2 || !args[1].IsPointer() {
			return Value{}, fmt.Errorf("want (value, pointer)")
		}
		v := args[0]
		p := args[1].Ptr
		w := max(v.Width, 1)
		kind := floatKindFor(v.Kind)
		out := Value{Kind: kind, Width: w}
		for l := 0; l < w; l++ {
			r, o := f(v.Lane(l).Float())
			out.F[l] = r
			out.I[l] = int64(clampToInt64(r))
			co := ConvertScalar(FloatValue(kind, o), p.Buf.Kind)
			if err := p.Buf.storeScalar(p.Off+int64(l), co.I[0], co.F[0]); err != nil {
				return Value{}, err
			}
		}
		c.countMem(p.Buf.Space, w, true)
		return out, nil
	}
}

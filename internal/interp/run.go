package interp

import (
	"fmt"

	"clgen/internal/clc"
)

// Run launches the named kernel over the NDRange described by cfg.
//
// Arguments correspond positionally to the kernel's parameters: pointer
// parameters take PtrValue arguments backed by Buffers (the caller's
// "device memory"), value parameters take scalar/vector Values. __local
// pointer parameters take a PtrValue whose Buffer acts as a size template:
// each work-group receives its own zeroed copy.
//
// Work-groups execute one after another. Within a group, work-items run
// sequentially; kernels whose call graph can reach barrier() run in
// deterministic lockstep phases instead (one goroutine per work-item,
// resumed round-robin), so barrier semantics hold without data races.
func (env *Env) Run(name string, args []Value, cfg RunConfig) (*Profile, error) {
	fd, err := env.Kernel(name)
	if err != nil {
		return nil, err
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(args) != len(fd.Params) {
		return nil, fmt.Errorf("interp: kernel %q takes %d arguments, got %d", name, len(fd.Params), len(args))
	}
	// Identify __local pointer parameters (per-group allocation).
	localTemplate := map[int]int{} // param index -> scalar slots
	for i, p := range fd.Params {
		pt, ok := p.Type.(*clc.PointerType)
		if !ok {
			continue
		}
		if pt.Space == clc.Local {
			if !args[i].IsPointer() {
				return nil, fmt.Errorf("interp: kernel %q parameter %d (__local) needs a buffer template", name, i)
			}
			localTemplate[i] = args[i].Ptr.Buf.Len()
		} else if !args[i].IsPointer() {
			return nil, fmt.Errorf("interp: kernel %q parameter %d needs a buffer argument", name, i)
		}
	}

	prof := &Profile{}
	budget := cfg.MaxSteps
	ngrp := [3]int64{
		int64(cfg.GlobalSize[0] / cfg.LocalSize[0]),
		int64(cfg.GlobalSize[1] / cfg.LocalSize[1]),
		int64(cfg.GlobalSize[2] / cfg.LocalSize[2]),
	}
	lockstep := env.usesBarrier[name]

	for gz := int64(0); gz < ngrp[2]; gz++ {
		for gy := int64(0); gy < ngrp[1]; gy++ {
			for gx := int64(0); gx < ngrp[0]; gx++ {
				groupArgs := make([]Value, len(args))
				copy(groupArgs, args)
				for i, slots := range localTemplate {
					buf := NewBuffer(args[i].Ptr.Buf.Kind, slots, clc.Local)
					groupArgs[i] = PtrValue(&Pointer{Buf: buf, Off: 0, Elem: args[i].Ptr.Elem})
				}
				grp := [3]int64{gx, gy, gz}
				var err error
				if lockstep {
					err = env.runGroupLockstep(fd, groupArgs, grp, ngrp, &cfg, prof, &budget)
				} else {
					err = env.runGroupSequential(fd, groupArgs, grp, ngrp, &cfg, prof, &budget)
				}
				if err != nil {
					return prof, err
				}
			}
		}
	}
	return prof, nil
}

// localIter invokes fn for every local id of a group, x-fastest.
func localIter(cfg *RunConfig, fn func(lid [3]int64) error) error {
	for lz := int64(0); lz < int64(cfg.LocalSize[2]); lz++ {
		for ly := int64(0); ly < int64(cfg.LocalSize[1]); ly++ {
			for lx := int64(0); lx < int64(cfg.LocalSize[0]); lx++ {
				if err := fn([3]int64{lx, ly, lz}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func newWICtx(env *Env, grp, lid, ngrp [3]int64, cfg *RunConfig, prof *Profile, budget *int64) *wiCtx {
	c := &wiCtx{
		env:    env,
		lid:    lid,
		grp:    grp,
		ngrp:   ngrp,
		prof:   prof,
		budget: budget,
	}
	for d := 0; d < 3; d++ {
		c.gsize[d] = int64(cfg.GlobalSize[d])
		c.lsize[d] = int64(cfg.LocalSize[d])
		c.gid[d] = grp[d]*c.lsize[d] + lid[d]
	}
	return c
}

func (env *Env) runGroupSequential(fd *clc.FuncDecl, args []Value, grp, ngrp [3]int64, cfg *RunConfig, prof *Profile, budget *int64) error {
	groupLocals := map[*clc.VarDecl]*slot{}
	return localIter(cfg, func(lid [3]int64) error {
		c := newWICtx(env, grp, lid, ngrp, cfg, prof, budget)
		c.groupLocals = groupLocals
		prof.WorkItems++
		_, err := c.runFunction(fd, args)
		return err
	})
}

// lockstep execution: one goroutine per work-item of the group, resumed in
// local-id order between barrier phases.
type wiReport struct {
	barrier bool
	err     error
}

type wiHandle struct {
	resume chan struct{}
	report chan wiReport
	done   bool
}

func (env *Env) runGroupLockstep(fd *clc.FuncDecl, args []Value, grp, ngrp [3]int64, cfg *RunConfig, prof *Profile, budget *int64) error {
	n := cfg.LocalSize[0] * cfg.LocalSize[1] * cfg.LocalSize[2]
	items := make([]*wiHandle, 0, n)
	cancel := false
	groupLocals := map[*clc.VarDecl]*slot{}

	_ = localIter(cfg, func(lid [3]int64) error {
		h := &wiHandle{resume: make(chan struct{}), report: make(chan wiReport)}
		items = append(items, h)
		c := newWICtx(env, grp, lid, ngrp, cfg, prof, budget)
		c.cancel = &cancel
		c.groupLocals = groupLocals
		c.yield = func() error {
			h.report <- wiReport{barrier: true}
			<-h.resume
			if cancel {
				return errCancelled
			}
			return nil
		}
		prof.WorkItems++
		go func() {
			<-h.resume
			var err error
			if !cancel {
				_, err = c.runFunction(fd, args)
			}
			h.report <- wiReport{err: err}
		}()
		return nil
	})

	var firstErr error
	live := len(items)
	for live > 0 {
		barriers, finished := 0, 0
		for _, h := range items {
			if h.done {
				continue
			}
			h.resume <- struct{}{}
			r := <-h.report
			if r.err != nil && r.err != errCancelled && firstErr == nil {
				firstErr = r.err
				cancel = true
			}
			if r.barrier {
				barriers++
			} else {
				h.done = true
				finished++
				live--
			}
		}
		if firstErr == nil && barriers > 0 && finished > 0 {
			firstErr = ErrBarrierDivergence
			cancel = true
		}
	}
	return firstErr
}

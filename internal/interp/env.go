package interp

import (
	"errors"
	"fmt"
	"strings"

	"clgen/internal/clc"
)

// Profile aggregates dynamic execution statistics across a kernel run.
// Vector operations count one event per lane, so a float4 add contributes
// 4 to FloatOps. The platform performance models consume these counters.
type Profile struct {
	WorkItems    int64
	IntOps       int64
	FloatOps     int64
	GlobalLoads  int64
	GlobalStores int64
	LocalLoads   int64
	LocalStores  int64
	PrivateOps   int64
	Branches     int64
	Barriers     int64
	Atomics      int64
	Steps        int64
}

// Add accumulates o into p.
func (p *Profile) Add(o *Profile) {
	p.WorkItems += o.WorkItems
	p.IntOps += o.IntOps
	p.FloatOps += o.FloatOps
	p.GlobalLoads += o.GlobalLoads
	p.GlobalStores += o.GlobalStores
	p.LocalLoads += o.LocalLoads
	p.LocalStores += o.LocalStores
	p.PrivateOps += o.PrivateOps
	p.Branches += o.Branches
	p.Barriers += o.Barriers
	p.Atomics += o.Atomics
	p.Steps += o.Steps
}

// Scale multiplies every counter by f. Used to extrapolate a profile
// measured at a reduced execution size to the nominal dataset size of a
// data-parallel kernel (per-work-item cost constant in the subset's suite
// kernels, so the extrapolation is exact for them).
func (p *Profile) Scale(f float64) {
	p.WorkItems = int64(float64(p.WorkItems) * f)
	p.IntOps = int64(float64(p.IntOps) * f)
	p.FloatOps = int64(float64(p.FloatOps) * f)
	p.GlobalLoads = int64(float64(p.GlobalLoads) * f)
	p.GlobalStores = int64(float64(p.GlobalStores) * f)
	p.LocalLoads = int64(float64(p.LocalLoads) * f)
	p.LocalStores = int64(float64(p.LocalStores) * f)
	p.PrivateOps = int64(float64(p.PrivateOps) * f)
	p.Branches = int64(float64(p.Branches) * f)
	p.Barriers = int64(float64(p.Barriers) * f)
	p.Atomics = int64(float64(p.Atomics) * f)
	p.Steps = int64(float64(p.Steps) * f)
}

// GlobalMemOps returns total global memory operations.
func (p *Profile) GlobalMemOps() int64 { return p.GlobalLoads + p.GlobalStores }

// LocalMemOps returns total local (shared) memory operations.
func (p *Profile) LocalMemOps() int64 { return p.LocalLoads + p.LocalStores }

// ComputeOps returns total arithmetic operations.
func (p *Profile) ComputeOps() int64 { return p.IntOps + p.FloatOps }

// Env is a prepared translation unit: functions resolved, file-scope
// constants evaluated. An Env is immutable after construction and safe to
// reuse across runs.
type Env struct {
	File    *clc.File
	funcs   map[string]*clc.FuncDecl
	globals map[string]Value
	consts  map[string]*Buffer // __constant / file-scope arrays
	// usesBarrier records, per function, whether its call graph can reach a
	// barrier; kernels that cannot take the fast sequential path.
	usesBarrier map[string]bool
}

// NewEnv prepares a checked file for execution.
func NewEnv(f *clc.File) (*Env, error) {
	env := &Env{
		File:        f,
		funcs:       map[string]*clc.FuncDecl{},
		globals:     map[string]Value{},
		consts:      map[string]*Buffer{},
		usesBarrier: map[string]bool{},
	}
	for _, fd := range f.Functions() {
		if fd.Body != nil {
			env.funcs[fd.Name] = fd
		}
	}
	for _, d := range f.Decls {
		vd, ok := d.(*clc.VarDecl)
		if !ok {
			continue
		}
		if err := env.initGlobal(vd); err != nil {
			return nil, err
		}
	}
	for name := range env.funcs {
		env.usesBarrier[name] = env.reachesBarrier(name, map[string]bool{})
	}
	return env, nil
}

func (env *Env) initGlobal(vd *clc.VarDecl) error {
	if at, ok := vd.Type.(*clc.ArrayType); ok {
		buf := NewBuffer(elemKind(at), int(scalarSlots(at)), vd.Space)
		if il, ok := vd.Init.(*clc.InitList); ok {
			if err := fillBufferFromInitList(buf, il, 0); err != nil {
				return fmt.Errorf("initializing %s: %w", vd.Name, err)
			}
		}
		env.consts[vd.Name] = buf
		return nil
	}
	v := ZeroValue(vd.Type)
	if vd.Init != nil {
		cv, err := evalConstExpr(vd.Init, env)
		if err != nil {
			return fmt.Errorf("initializing %s: %w", vd.Name, err)
		}
		conv, err := Convert(cv, vd.Type)
		if err != nil {
			return fmt.Errorf("initializing %s: %w", vd.Name, err)
		}
		v = conv
	}
	env.globals[vd.Name] = v
	return nil
}

func elemKind(t clc.Type) clc.ScalarKind {
	switch x := t.(type) {
	case *clc.ScalarType:
		return x.Kind
	case *clc.VectorType:
		return x.Elem
	case *clc.ArrayType:
		return elemKind(x.Elem)
	case *clc.PointerType:
		return elemKind(x.Elem)
	}
	return clc.Int
}

func fillBufferFromInitList(buf *Buffer, il *clc.InitList, off int64) error {
	pos := off
	for _, e := range il.Elems {
		if nested, ok := e.(*clc.InitList); ok {
			if err := fillBufferFromInitList(buf, nested, pos); err != nil {
				return err
			}
			// Advance by the nested element count (flattened).
			pos += int64(countInitScalars(nested))
			continue
		}
		v, err := evalConstExpr(e, nil)
		if err != nil {
			return err
		}
		c := ConvertScalar(v, buf.Kind)
		if err := buf.storeScalar(pos, c.I[0], c.F[0]); err != nil {
			return err
		}
		pos++
	}
	return nil
}

func countInitScalars(il *clc.InitList) int {
	n := 0
	for _, e := range il.Elems {
		if nested, ok := e.(*clc.InitList); ok {
			n += countInitScalars(nested)
		} else {
			n++
		}
	}
	return n
}

// evalConstExpr evaluates file-scope constant initializers: literals,
// predeclared constants, and arithmetic over them.
func evalConstExpr(e clc.Expr, env *Env) (Value, error) {
	switch x := e.(type) {
	case *clc.IntLit:
		return IntValue(clc.Long, x.Value), nil
	case *clc.FloatLit:
		kind := clc.Double
		if strings.ContainsAny(x.Text, "fF") {
			kind = clc.Float
		}
		return FloatValue(kind, x.Value), nil
	case *clc.CharLit:
		return IntValue(clc.Char, x.Value), nil
	case *clc.Ident:
		if f, ok := clc.PredeclaredValue(x.Name); ok {
			return FloatValue(clc.Double, f), nil
		}
		if env != nil {
			if v, ok := env.globals[x.Name]; ok {
				return v, nil
			}
		}
		return Value{}, fmt.Errorf("non-constant identifier %q in constant expression", x.Name)
	case *clc.UnaryExpr:
		v, err := evalConstExpr(x.X, env)
		if err != nil {
			return Value{}, err
		}
		return unaryOp(x.Op, v)
	case *clc.BinaryExpr:
		a, err := evalConstExpr(x.X, env)
		if err != nil {
			return Value{}, err
		}
		b, err := evalConstExpr(x.Y, env)
		if err != nil {
			return Value{}, err
		}
		return binaryOp(x.Op, a, b)
	case *clc.CastExpr:
		v, err := evalConstExpr(x.X, env)
		if err != nil {
			return Value{}, err
		}
		return Convert(v, x.To)
	}
	return Value{}, fmt.Errorf("unsupported constant expression %T", e)
}

// reachesBarrier reports whether fn can execute a barrier.
func (env *Env) reachesBarrier(fn string, visiting map[string]bool) bool {
	if visiting[fn] {
		return false
	}
	visiting[fn] = true
	fd, ok := env.funcs[fn]
	if !ok {
		return false
	}
	found := false
	clc.Walk(fd.Body, func(n clc.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*clc.CallExpr); ok {
			if b := clc.LookupBuiltin(call.Fun); b != nil && b.Sync {
				found = true
				return false
			}
			if _, user := env.funcs[call.Fun]; user && env.reachesBarrier(call.Fun, visiting) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// Kernel returns the kernel declaration with the given name, or an error.
func (env *Env) Kernel(name string) (*clc.FuncDecl, error) {
	fd, ok := env.funcs[name]
	if !ok || !fd.IsKernel {
		return nil, fmt.Errorf("interp: no kernel %q", name)
	}
	return fd, nil
}

// Kernels lists the kernel names in declaration order.
func (env *Env) Kernels() []string {
	var names []string
	for _, fd := range env.File.Kernels() {
		if fd.Body != nil {
			names = append(names, fd.Name)
		}
	}
	return names
}

// Errors reported by kernel execution.
var (
	// ErrStepLimit reports that a run exceeded its execution budget —
	// the interpreter's analogue of the host driver's timeout (§5.2).
	ErrStepLimit = errors.New("interp: step limit exceeded (possible non-termination)")
	// ErrBarrierDivergence reports work-items of one group disagreeing on
	// barrier participation, which is undefined behaviour in OpenCL.
	ErrBarrierDivergence = errors.New("interp: barrier divergence within work-group")
)

// RunConfig describes one NDRange launch.
type RunConfig struct {
	// GlobalSize is the number of work-items per dimension; unused
	// dimensions must be 1. The zero value of a dimension is treated as 1.
	GlobalSize [3]int
	// LocalSize is the work-group size per dimension. Zero dimensions
	// default to min(GlobalSize, 64) on dimension 0 and 1 elsewhere.
	LocalSize [3]int
	// MaxSteps bounds total dynamic statements+expressions evaluated across
	// the launch; 0 means DefaultMaxSteps.
	MaxSteps int64
}

// DefaultMaxSteps is the default execution budget for one launch.
const DefaultMaxSteps = 64 << 20

func (c *RunConfig) normalize() error {
	for i := 0; i < 3; i++ {
		if c.GlobalSize[i] <= 0 {
			c.GlobalSize[i] = 1
		}
	}
	if c.LocalSize[0] <= 0 {
		c.LocalSize[0] = 64
		if c.GlobalSize[0] < 64 {
			c.LocalSize[0] = c.GlobalSize[0]
		}
	}
	for i := 1; i < 3; i++ {
		if c.LocalSize[i] <= 0 {
			c.LocalSize[i] = 1
		}
	}
	for i := 0; i < 3; i++ {
		if c.GlobalSize[i]%c.LocalSize[i] != 0 {
			return fmt.Errorf("interp: global size %d not divisible by local size %d in dim %d",
				c.GlobalSize[i], c.LocalSize[i], i)
		}
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = DefaultMaxSteps
	}
	return nil
}

package interp

import (
	"errors"
	"math"
	"testing"

	"clgen/internal/clc"
)

// buildEnv compiles source and prepares an Env.
func buildEnv(t *testing.T, src string) *Env {
	t.Helper()
	f, err := clc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := clc.Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	env, err := NewEnv(f)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

// floatBuf wraps data in a global float buffer.
func floatBuf(data []float64) *Buffer {
	b := NewBuffer(clc.Float, len(data), clc.Global)
	copy(b.F, data)
	return b
}

func intBuf(data []int64) *Buffer {
	b := NewBuffer(clc.Int, len(data), clc.Global)
	copy(b.I, data)
	return b
}

func ptrArg(b *Buffer, elem clc.Type) Value {
	return PtrValue(&Pointer{Buf: b, Off: 0, Elem: elem})
}

func TestRunSaxpy(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* a, __global float* b, const int c) {
  int d = get_global_id(0);
  if (d < c) {
    b[d] += 3.5f * a[d];
  }
}`)
	n := 8
	a := floatBuf([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	b := floatBuf(make([]float64, n))
	prof, err := env.Run("A", []Value{
		ptrArg(a, clc.TypeFloat), ptrArg(b, clc.TypeFloat), IntValue(clc.Int, int64(n)),
	}, RunConfig{GlobalSize: [3]int{n, 1, 1}, LocalSize: [3]int{4, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 3.5 * float64(i+1)
		if math.Abs(b.F[i]-want) > 1e-6 {
			t.Errorf("b[%d] = %g, want %g", i, b.F[i], want)
		}
	}
	if prof.WorkItems != int64(n) {
		t.Errorf("work items = %d", prof.WorkItems)
	}
	if prof.GlobalLoads != int64(n)*2 || prof.GlobalStores != int64(n) {
		t.Errorf("mem profile: loads=%d stores=%d", prof.GlobalLoads, prof.GlobalStores)
	}
	if prof.FloatOps == 0 || prof.Branches != int64(n) {
		t.Errorf("op profile: fpu=%d branches=%d", prof.FloatOps, prof.Branches)
	}
}

func TestRunFigure6b(t *testing.T) {
	// Paper Figure 6(b): zip computing c_i = 3a_i + 2b_i + 4.
	env := buildEnv(t, `__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
  int e = get_global_id(0);
  if (e >= d) {
    return;
  }
  c[e] = a[e] + b[e] + 2 * a[e] + b[e] + 4;
}`)
	a := floatBuf([]float64{1, 2, 3, 4})
	b := floatBuf([]float64{10, 20, 30, 40})
	c := floatBuf(make([]float64, 4))
	_, err := env.Run("A", []Value{
		ptrArg(a, clc.TypeFloat), ptrArg(b, clc.TypeFloat), ptrArg(c, clc.TypeFloat), IntValue(clc.Int, 4),
	}, RunConfig{GlobalSize: [3]int{4, 1, 1}, LocalSize: [3]int{4, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := 3*a.F[i] + 2*b.F[i] + 4
		if math.Abs(c.F[i]-want) > 1e-6 {
			t.Errorf("c[%d] = %g, want %g", i, c.F[i], want)
		}
	}
}

func TestRunFigure6cVectorReduction(t *testing.T) {
	// Paper Figure 6(c): partial reduction over reinterpreted float16.
	env := buildEnv(t, `__kernel void A(__global float* a, __global float* b, __global float* c, const int d) {
  unsigned int e = get_global_id(0);
  float16 f = (float16)(0.0);
  for (unsigned int g = 0; g < d; g++) {
    float16 h = a[g];
    f.s0 += h.s0;
    f.s1 += h.s1;
  }
  b[e] = f.s0 + f.s1;
}`)
	a := floatBuf([]float64{1, 2, 3, 4})
	b := floatBuf(make([]float64, 1))
	c := floatBuf(make([]float64, 1))
	_, err := env.Run("A", []Value{
		ptrArg(a, clc.TypeFloat), ptrArg(b, clc.TypeFloat), ptrArg(c, clc.TypeFloat), IntValue(clc.Int, 4),
	}, RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// h = splat(a[g]); f.s0 and f.s1 both accumulate sum(a) = 10; b[0] = 20.
	if b.F[0] != 20 {
		t.Errorf("b[0] = %g, want 20", b.F[0])
	}
}

func TestBarrierReduction(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* in, __global float* out, __local float* scratch) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  int lsz = get_local_size(0);
  scratch[lid] = in[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int offset = lsz / 2; offset > 0; offset /= 2) {
    if (lid < offset) {
      scratch[lid] += scratch[lid + offset];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) {
    out[get_group_id(0)] = scratch[0];
  }
}`)
	n, wg := 16, 8
	in := floatBuf([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	out := floatBuf(make([]float64, n/wg))
	scratch := NewBuffer(clc.Float, wg, clc.Local)
	prof, err := env.Run("A", []Value{
		ptrArg(in, clc.TypeFloat), ptrArg(out, clc.TypeFloat), ptrArg(scratch, clc.TypeFloat),
	}, RunConfig{GlobalSize: [3]int{n, 1, 1}, LocalSize: [3]int{wg, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out.F[0] != 36 || out.F[1] != 100 {
		t.Errorf("group sums = %v, want [36 100]", out.F)
	}
	if prof.Barriers == 0 || prof.LocalLoads == 0 || prof.LocalStores == 0 {
		t.Errorf("profile: %+v", prof)
	}
}

func TestLocalArrayInKernel(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* a) {
  __local float tile[8];
  int lid = get_local_id(0);
  tile[lid] = a[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  a[get_global_id(0)] = tile[7 - lid];
}`)
	a := floatBuf([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{8, 1, 1}, LocalSize: [3]int{8, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// NOTE: each work-item has its own __local array copy in this subset
	// when declared in-body? No — OpenCL __local declared in kernel body is
	// shared per group. Verify reversal happened.
	for i := 0; i < 8; i++ {
		if a.F[i] != float64(7-i) {
			t.Errorf("a[%d] = %g, want %d", i, a.F[i], 7-i)
		}
	}
}

func TestUserFunctionCall(t *testing.T) {
	env := buildEnv(t, `float square(float x) { return x * x; }
float plus(float x, float y) { return x + y; }
__kernel void A(__global float* a) {
  int i = get_global_id(0);
  a[i] = plus(square(a[i]), 1.0f);
}`)
	a := floatBuf([]float64{2, 3})
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{2, 1, 1}, LocalSize: [3]int{2, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if a.F[0] != 5 || a.F[1] != 10 {
		t.Errorf("a = %v", a.F[:2])
	}
}

func TestIntegerOpsAndTypes(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* a) {
  int i = get_global_id(0);
  uint x = 7u;
  a[i] = (a[i] << 2) | (a[i] & 3);
  a[i] = a[i] % 100;
  a[i] += (int)(x / 2u);
}`)
	a := intBuf([]int64{5, 6})
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeInt)},
		RunConfig{GlobalSize: [3]int{2, 1, 1}, LocalSize: [3]int{2, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// 5: (5<<2)|(5&3) = 20|1 = 21; 21%100=21; +3 = 24.
	// 6: (6<<2)|(6&3) = 24|2 = 26; +3 = 29.
	if a.I[0] != 24 || a.I[1] != 29 {
		t.Errorf("a = %v", a.I[:2])
	}
}

func TestDivisionByZeroSaturates(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* a) {
  a[0] = a[0] / a[1];
  a[2] = a[2] % a[1];
}`)
	a := intBuf([]int64{10, 0, 7})
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeInt)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if a.I[0] != 0 || a.I[2] != 0 {
		t.Errorf("a = %v, want zeros", a.I)
	}
}

func TestVectorOps(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float4* a, __global float* out) {
  float4 v = a[0];
  float4 w = v * 2.0f + (float4)(1.0f, 2.0f, 3.0f, 4.0f);
  out[0] = w.x + w.y + w.z + w.w;
  out[1] = dot(v, v);
  out[2] = length((float2)(3.0f, 4.0f));
  float4 r = v.wzyx;
  out[3] = r.x;
}`)
	a := floatBuf([]float64{1, 2, 3, 4})
	out := floatBuf(make([]float64, 4))
	vecT := &clc.VectorType{Elem: clc.Float, Len: 4}
	_, err := env.Run("A", []Value{ptrArg(a, vecT), ptrArg(out, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// w = (2,4,6,8)+(1,2,3,4) = (3,6,9,12); sum=30. dot(v,v)=30. length=5. r.x=4.
	want := []float64{30, 30, 5, 4}
	for i, w := range want {
		if math.Abs(out.F[i]-w) > 1e-5 {
			t.Errorf("out[%d] = %g, want %g", i, out.F[i], w)
		}
	}
}

func TestSwizzleAssignment(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* out) {
  float4 v = (float4)(0.0f);
  v.x = 1.0f;
  v.s3 = 4.0f;
  v.yz = (float2)(2.0f, 3.0f);
  out[0] = v.x; out[1] = v.y; out[2] = v.z; out[3] = v.w;
}`)
	out := floatBuf(make([]float64, 4))
	_, err := env.Run("A", []Value{ptrArg(out, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if out.F[i] != float64(i+1) {
			t.Errorf("out[%d] = %g, want %d", i, out.F[i], i+1)
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* a) {
  a[0] = sqrt(16.0f);
  a[1] = fabs(-3.0f);
  a[2] = fmin(2.0f, 5.0f);
  a[3] = fmax(2.0f, 5.0f);
  a[4] = clamp(7.0f, 0.0f, 5.0f);
  a[5] = mad(2.0f, 3.0f, 4.0f);
  a[6] = pow(2.0f, 10.0f);
  a[7] = floor(3.7f);
  a[8] = exp(0.0f);
  a[9] = max(3, 9);
  a[10] = min(-2, 4);
  a[11] = mix(0.0f, 10.0f, 0.25f);
}`)
	a := floatBuf(make([]float64, 12))
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 3, 2, 5, 5, 10, 1024, 3, 1, 9, -2, 2.5}
	for i, w := range want {
		if math.Abs(a.F[i]-w) > 1e-5 {
			t.Errorf("a[%d] = %g, want %g", i, a.F[i], w)
		}
	}
}

func TestAtomics(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* counter) {
  atomic_add(&counter[0], 1);
  atomic_max(&counter[1], get_global_id(0));
}`)
	c := intBuf(make([]int64, 2))
	prof, err := env.Run("A", []Value{ptrArg(c, clc.TypeInt)},
		RunConfig{GlobalSize: [3]int{32, 1, 1}, LocalSize: [3]int{8, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if c.I[0] != 32 {
		t.Errorf("counter = %d, want 32", c.I[0])
	}
	if c.I[1] != 31 {
		t.Errorf("max gid = %d, want 31", c.I[1])
	}
	if prof.Atomics != 64 {
		t.Errorf("atomics = %d, want 64", prof.Atomics)
	}
}

func TestStepLimitNonTermination(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* a) {
  while (1) {
    a[0] += 1;
  }
}`)
	a := intBuf(make([]int64, 1))
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeInt)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}, MaxSteps: 10000})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestStepLimitInLockstepKernel(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* a) {
  barrier(CLK_LOCAL_MEM_FENCE);
  while (1) {
    a[0] += 1;
  }
}`)
	a := intBuf(make([]int64, 1))
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeInt)},
		RunConfig{GlobalSize: [3]int{4, 1, 1}, LocalSize: [3]int{4, 1, 1}, MaxSteps: 20000})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestBarrierDivergenceDetected(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* a) {
  if (get_local_id(0) == 0) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  a[get_global_id(0)] = 1;
}`)
	a := intBuf(make([]int64, 4))
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeInt)},
		RunConfig{GlobalSize: [3]int{4, 1, 1}, LocalSize: [3]int{4, 1, 1}})
	if !errors.Is(err, ErrBarrierDivergence) {
		t.Fatalf("err = %v, want ErrBarrierDivergence", err)
	}
}

func TestOutOfBoundsReported(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* a) {
  a[100] = 1;
}`)
	a := intBuf(make([]int64, 4))
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeInt)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestPrivateArraysAndLoops(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* out) {
  float acc[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  float sum = 0.0f;
  for (int i = 0; i < 4; i++) {
    sum += acc[i] * acc[i];
  }
  out[get_global_id(0)] = sum;
}`)
	out := floatBuf(make([]float64, 2))
	_, err := env.Run("A", []Value{ptrArg(out, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{2, 1, 1}, LocalSize: [3]int{2, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out.F[0] != 30 || out.F[1] != 30 {
		t.Errorf("out = %v, want 30s", out.F)
	}
}

func TestMultiDimArrays(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* out) {
  float m[2][3];
  for (int i = 0; i < 2; i++) {
    for (int j = 0; j < 3; j++) {
      m[i][j] = i * 10 + j;
    }
  }
  out[0] = m[1][2];
  out[1] = m[0][1];
}`)
	out := floatBuf(make([]float64, 2))
	_, err := env.Run("A", []Value{ptrArg(out, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out.F[0] != 12 || out.F[1] != 1 {
		t.Errorf("out = %v, want [12 1]", out.F)
	}
}

func TestTwoDimensionalNDRange(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* out, const int w) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  out[y * w + x] = x + y * 100;
}`)
	out := intBuf(make([]int64, 12))
	_, err := env.Run("A", []Value{ptrArg(out, clc.TypeInt), IntValue(clc.Int, 4)},
		RunConfig{GlobalSize: [3]int{4, 3, 1}, LocalSize: [3]int{2, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out.I[0] != 0 || out.I[5] != 101 || out.I[11] != 203 {
		t.Errorf("out = %v", out.I)
	}
}

func TestVloadVstore(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* in, __global float* out) {
  float4 v = vload4(0, in);
  vstore4(v * 2.0f, 0, out);
}`)
	in := floatBuf([]float64{1, 2, 3, 4})
	out := floatBuf(make([]float64, 4))
	_, err := env.Run("A", []Value{ptrArg(in, clc.TypeFloat), ptrArg(out, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if out.F[i] != float64(i+1)*2 {
			t.Errorf("out[%d] = %g", i, out.F[i])
		}
	}
}

func TestSelectAndConversions(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* out) {
  int i = 7;
  float f = convert_float(i);
  out[0] = f / 2.0f;
  out[1] = select(1.0f, 2.0f, 1);
  uint bits = as_uint(1.0f);
  out[2] = (bits == 0x3F800000u) ? 1.0f : 0.0f;
}`)
	out := floatBuf(make([]float64, 3))
	_, err := env.Run("A", []Value{ptrArg(out, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out.F[0] != 3.5 || out.F[1] != 2 || out.F[2] != 1 {
		t.Errorf("out = %v", out.F)
	}
}

func TestPointerWalk(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* a, const int n) {
  __global float* p = a;
  float sum = 0.0f;
  for (int i = 0; i < n; i++) {
    sum += *p;
    p = p + 1;
  }
  a[0] = sum;
}`)
	a := floatBuf([]float64{1, 2, 3, 4})
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeFloat), IntValue(clc.Int, 4)},
		RunConfig{GlobalSize: [3]int{1, 1, 1}, LocalSize: [3]int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if a.F[0] != 10 {
		t.Errorf("sum = %g, want 10", a.F[0])
	}
}

func TestSwitchFallthrough(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* a) {
  int i = get_global_id(0);
  int r = 0;
  switch (i) {
  case 0: r = 10; break;
  case 1:
  case 2: r = 20; break;
  default: r = 99;
  }
  a[i] = r;
}`)
	a := intBuf(make([]int64, 4))
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeInt)},
		RunConfig{GlobalSize: [3]int{4, 1, 1}, LocalSize: [3]int{4, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 20, 99}
	for i, w := range want {
		if a.I[i] != w {
			t.Errorf("a[%d] = %d, want %d", i, a.I[i], w)
		}
	}
}

func TestGlobalConstants(t *testing.T) {
	env := buildEnv(t, `__constant float scale = 2.5f;
__constant int lut[4] = {10, 20, 30, 40};
__kernel void A(__global float* out) {
  int i = get_global_id(0);
  out[i] = lut[i] * scale;
}`)
	out := floatBuf(make([]float64, 4))
	_, err := env.Run("A", []Value{ptrArg(out, clc.TypeFloat)},
		RunConfig{GlobalSize: [3]int{4, 1, 1}, LocalSize: [3]int{4, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{25, 50, 75, 100}
	for i, w := range want {
		if out.F[i] != w {
			t.Errorf("out[%d] = %g, want %g", i, out.F[i], w)
		}
	}
}

func TestTernaryShortCircuit(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global int* a, const int n) {
  int i = get_global_id(0);
  a[i] = (i < n && a[i] > 0) ? a[i] * 2 : -1;
}`)
	a := intBuf([]int64{5, -3, 7, 0})
	_, err := env.Run("A", []Value{ptrArg(a, clc.TypeInt), IntValue(clc.Int, 4)},
		RunConfig{GlobalSize: [3]int{4, 1, 1}, LocalSize: [3]int{4, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, -1, 14, -1}
	for i, w := range want {
		if a.I[i] != w {
			t.Errorf("a[%d] = %d, want %d", i, a.I[i], w)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	src := `__kernel void A(__global float* a, __local float* s) {
  int lid = get_local_id(0);
  s[lid] = a[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  a[get_global_id(0)] = s[(lid + 1) % get_local_size(0)];
}`
	run := func() []float64 {
		env := buildEnv(t, src)
		a := floatBuf([]float64{1, 2, 3, 4, 5, 6, 7, 8})
		s := NewBuffer(clc.Float, 4, clc.Local)
		_, err := env.Run("A", []Value{ptrArg(a, clc.TypeFloat), ptrArg(s, clc.TypeFloat)},
			RunConfig{GlobalSize: [3]int{8, 1, 1}, LocalSize: [3]int{4, 1, 1}})
		if err != nil {
			t.Fatal(err)
		}
		return a.F
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("non-deterministic: run1=%v run2=%v", r1, r2)
		}
	}
}

func TestBufferEqualEpsilon(t *testing.T) {
	a := floatBuf([]float64{1, 2, 3})
	b := floatBuf([]float64{1 + 1e-9, 2, 3})
	if !a.Equal(b, 1e-6) {
		t.Error("epsilon equality failed")
	}
	c := floatBuf([]float64{1.1, 2, 3})
	if a.Equal(c, 1e-6) {
		t.Error("distinct buffers compared equal")
	}
	if !a.Equal(a.Clone(), 0) {
		t.Error("clone not equal")
	}
}

func TestProfileAdd(t *testing.T) {
	p := &Profile{IntOps: 1, FloatOps: 2, GlobalLoads: 3, Barriers: 4}
	q := &Profile{IntOps: 10, FloatOps: 20, GlobalLoads: 30, Barriers: 40}
	p.Add(q)
	if p.IntOps != 11 || p.FloatOps != 22 || p.GlobalLoads != 33 || p.Barriers != 44 {
		t.Errorf("Add: %+v", p)
	}
}

func TestKernelArgValidation(t *testing.T) {
	env := buildEnv(t, `__kernel void A(__global float* a, const int n) { a[0] = n; }`)
	if _, err := env.Run("A", nil, RunConfig{GlobalSize: [3]int{1, 1, 1}}); err == nil {
		t.Error("missing args accepted")
	}
	if _, err := env.Run("B", nil, RunConfig{}); err == nil {
		t.Error("unknown kernel accepted")
	}
	a := floatBuf(make([]float64, 1))
	if _, err := env.Run("A", []Value{IntValue(clc.Int, 0), IntValue(clc.Int, 1)}, RunConfig{GlobalSize: [3]int{1, 1, 1}}); err == nil {
		t.Error("non-buffer for pointer param accepted")
	}
	if _, err := env.Run("A", []Value{ptrArg(a, clc.TypeFloat), IntValue(clc.Int, 1)},
		RunConfig{GlobalSize: [3]int{5, 1, 1}, LocalSize: [3]int{2, 1, 1}}); err == nil {
		t.Error("indivisible NDRange accepted")
	}
}

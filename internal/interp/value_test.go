package interp

import (
	"math"
	"testing"
	"testing/quick"

	"clgen/internal/clc"
)

func TestIntValueTruncation(t *testing.T) {
	cases := []struct {
		kind clc.ScalarKind
		in   int64
		want int64
	}{
		{clc.Char, 200, -56},
		{clc.UChar, 300, 44},
		{clc.Short, 1 << 20, 0},
		{clc.UShort, 70000, 4464},
		{clc.Int, 1 << 40, 0},
		{clc.UInt, -1, 4294967295},
		{clc.Long, -5, -5},
		{clc.Bool, 17, 1},
		{clc.Bool, 0, 0},
	}
	for _, c := range cases {
		v := IntValue(c.kind, c.in)
		if v.I[0] != c.want {
			t.Errorf("IntValue(%v, %d) = %d, want %d", c.kind, c.in, v.I[0], c.want)
		}
	}
}

func TestFloatValueSinglePrecision(t *testing.T) {
	v := FloatValue(clc.Float, 1.0/3.0)
	if v.F[0] != float64(float32(1.0/3.0)) {
		t.Error("float kind not rounded to single precision")
	}
	d := FloatValue(clc.Double, 1.0/3.0)
	if d.F[0] != 1.0/3.0 {
		t.Error("double kind rounded")
	}
}

func TestSplatAndLanes(t *testing.T) {
	s := FloatValue(clc.Float, 2.5)
	v := Splat(s, clc.Float, 4)
	if v.Width != 4 {
		t.Fatalf("width %d", v.Width)
	}
	for l := 0; l < 4; l++ {
		if v.Lane(l).Float() != 2.5 {
			t.Errorf("lane %d = %v", l, v.Lane(l))
		}
	}
}

func TestConvertScalarToVectorSplat(t *testing.T) {
	// OpenCL widening rule: scalar converts to vector by splat.
	v, err := Convert(IntValue(clc.Int, 7), &clc.VectorType{Elem: clc.Float, Len: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v.Width != 8 || v.F[7] != 7 {
		t.Errorf("splat conversion: %v", v)
	}
	// Width mismatch is an error.
	if _, err := Convert(v, &clc.VectorType{Elem: clc.Float, Len: 4}); err == nil {
		t.Error("8->4 vector conversion accepted")
	}
}

func TestPointerCastReinterpretsElem(t *testing.T) {
	buf := NewBuffer(clc.Float, 16, clc.Global)
	p := PtrValue(&Pointer{Buf: buf, Elem: clc.TypeFloat})
	v4 := &clc.VectorType{Elem: clc.Float, Len: 4}
	cast, err := Convert(p, &clc.PointerType{Elem: v4, Space: clc.Global})
	if err != nil {
		t.Fatal(err)
	}
	if !clc.SameType(cast.Ptr.Elem, v4) {
		t.Errorf("pointee = %v", cast.Ptr.Elem)
	}
}

func TestBufferLoadStoreRoundTrip(t *testing.T) {
	err := quick.Check(func(vals []float64, idx uint8) bool {
		if len(vals) == 0 {
			return true
		}
		b := NewBuffer(clc.Float, len(vals), clc.Global)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			if err := b.storeScalar(int64(i), int64(v), v); err != nil {
				return false
			}
		}
		i := int64(int(idx) % len(vals))
		_, f, err := b.loadScalar(i)
		if err != nil {
			return false
		}
		want := vals[i]
		if math.IsNaN(want) || math.IsInf(want, 0) {
			want = 1
		}
		return f == want
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBufferOOB(t *testing.T) {
	b := NewBuffer(clc.Int, 4, clc.Global)
	if _, _, err := b.loadScalar(4); err == nil {
		t.Error("read past end accepted")
	}
	if _, _, err := b.loadScalar(-1); err == nil {
		t.Error("negative read accepted")
	}
	if err := b.storeScalar(100, 0, 0); err == nil {
		t.Error("write past end accepted")
	}
}

func TestBinaryOpPromotion(t *testing.T) {
	// int + float -> float
	v, err := binaryOp(clc.ADD, IntValue(clc.Int, 3), FloatValue(clc.Float, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Kind.IsFloat() || v.Float() != 3.5 {
		t.Errorf("3 + 0.5f = %v", v)
	}
	// scalar op vector -> vector
	vec := Splat(FloatValue(clc.Float, 2), clc.Float, 4)
	v, err = binaryOp(clc.MUL, FloatValue(clc.Float, 3), vec)
	if err != nil {
		t.Fatal(err)
	}
	if v.Width != 4 || v.F[2] != 6 {
		t.Errorf("3 * (2,2,2,2) = %v", v)
	}
}

func TestUnsignedSemantics(t *testing.T) {
	// uint division and comparison use unsigned interpretation.
	a := IntValue(clc.UInt, -1) // 4294967295
	b := IntValue(clc.UInt, 2)
	div, err := binaryOp(clc.DIV, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if div.I[0] != 2147483647 {
		t.Errorf("uint div = %d", div.I[0])
	}
	cmp, err := binaryOp(clc.GT, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Bool() {
		t.Error("4294967295u > 2u should hold")
	}
	// Signed: -1 > 2 is false.
	scmp, _ := binaryOp(clc.GT, IntValue(clc.Int, -1), IntValue(clc.Int, 2))
	if scmp.Bool() {
		t.Error("-1 > 2 should not hold")
	}
}

func TestShiftMasking(t *testing.T) {
	v, err := binaryOp(clc.SHL, IntValue(clc.Int, 1), IntValue(clc.Int, 65))
	if err != nil {
		t.Fatal(err)
	}
	if v.I[0] != 2 { // 65 & 63 == 1
		t.Errorf("1 << 65 = %d, want 2 (shift count masked)", v.I[0])
	}
}

func TestPointerArithmetic(t *testing.T) {
	buf := NewBuffer(clc.Float, 8, clc.Global)
	p := PtrValue(&Pointer{Buf: buf, Elem: clc.TypeFloat})
	q, err := binaryOp(clc.ADD, p, IntValue(clc.Int, 3))
	if err != nil {
		t.Fatal(err)
	}
	if q.Ptr.Off != 3 {
		t.Errorf("p+3 off = %d", q.Ptr.Off)
	}
	diff, err := binaryOp(clc.SUB, q, p)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Int() != 3 {
		t.Errorf("q - p = %d", diff.Int())
	}
	// Vector-element pointers scale by lane count.
	v4 := &clc.VectorType{Elem: clc.Float, Len: 4}
	pv := PtrValue(&Pointer{Buf: buf, Elem: v4})
	qv, err := binaryOp(clc.ADD, pv, IntValue(clc.Int, 1))
	if err != nil {
		t.Fatal(err)
	}
	if qv.Ptr.Off != 4 {
		t.Errorf("float4* + 1 advanced %d slots, want 4", qv.Ptr.Off)
	}
}

func TestDivByZeroDeterministic(t *testing.T) {
	err := quick.Check(func(a int32) bool {
		v, err := binaryOp(clc.DIV, IntValue(clc.Int, int64(a)), IntValue(clc.Int, 0))
		if err != nil || v.I[0] != 0 {
			return false
		}
		r, err := binaryOp(clc.REM, IntValue(clc.Int, int64(a)), IntValue(clc.Int, 0))
		return err == nil && r.I[0] == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
	// Float division by zero follows IEEE.
	v, err := binaryOp(clc.DIV, FloatValue(clc.Float, 1), FloatValue(clc.Float, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v.Float(), 1) {
		t.Errorf("1.0/0.0 = %v", v.Float())
	}
}

func TestUnaryOps(t *testing.T) {
	if v, _ := unaryOp(clc.SUB, FloatValue(clc.Float, 2.5)); v.Float() != -2.5 {
		t.Errorf("-2.5 = %v", v)
	}
	if v, _ := unaryOp(clc.NOT, IntValue(clc.Int, 0)); !v.Bool() {
		t.Error("!0 should be true")
	}
	if v, _ := unaryOp(clc.BNOT, IntValue(clc.Int, 0)); v.I[0] != -1 {
		t.Errorf("~0 = %d", v.I[0])
	}
	if _, err := unaryOp(clc.BNOT, FloatValue(clc.Float, 1)); err == nil {
		t.Error("~float accepted")
	}
}

func TestValueString(t *testing.T) {
	if s := IntValue(clc.Int, 42).String(); s != "42" {
		t.Errorf("String() = %q", s)
	}
	v := VecValue(clc.Float, []Value{FloatValue(clc.Float, 1), FloatValue(clc.Float, 2)})
	if s := v.String(); s != "float2(1, 2)" {
		t.Errorf("String() = %q", s)
	}
}

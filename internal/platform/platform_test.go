package platform

import (
	"testing"
	"testing/quick"

	"clgen/internal/interp"
)

// wl builds a workload with the given shape.
func wl(flops, gmem, lmem, branches int64, coal float64, transfer int64, wi int64) Workload {
	return Workload{
		Profile: &interp.Profile{
			FloatOps:    flops,
			GlobalLoads: gmem / 2, GlobalStores: gmem - gmem/2,
			LocalLoads: lmem / 2, LocalStores: lmem - lmem/2,
			Branches: branches,
		},
		CoalescedFrac: coal,
		TransferBytes: transfer,
		WorkItems:     wi,
	}
}

func TestSmallTransferBoundKernelFavorsCPU(t *testing.T) {
	// Tiny kernel, relatively large transfer: the PCIe cost dominates.
	w := wl(1_000, 2_000, 0, 0, 1.0, 1<<20, 256)
	for _, s := range []*System{SystemAMD, SystemNVIDIA} {
		best, cpuT, gpuT := s.BestDevice(w)
		if best.Type != CPU {
			t.Errorf("%s: small kernel mapped to GPU (cpu=%g gpu=%g)", s.Name, cpuT, gpuT)
		}
	}
}

func TestLargeParallelKernelFavorsGPU(t *testing.T) {
	// Heavy compute, high parallelism, coalesced: GPU must win despite
	// transfers.
	w := wl(4_000_000_000, 80_000_000, 0, 0, 1.0, 64<<20, 1<<22)
	for _, s := range []*System{SystemAMD, SystemNVIDIA} {
		best, cpuT, gpuT := s.BestDevice(w)
		if best.Type != GPU {
			t.Errorf("%s: large kernel mapped to CPU (cpu=%g gpu=%g)", s.Name, cpuT, gpuT)
		}
	}
}

func TestCoalescingMattersOnGPU(t *testing.T) {
	coalesced := wl(1_000_000, 50_000_000, 0, 0, 1.0, 1<<20, 1<<20)
	scattered := wl(1_000_000, 50_000_000, 0, 0, 0.0, 1<<20, 1<<20)
	for _, gpu := range []*Device{AMDTahiti, NVIDIAGTX970} {
		tc := gpu.KernelTime(coalesced)
		ts := gpu.KernelTime(scattered)
		if ts < tc*3 {
			t.Errorf("%s: uncoalesced only %.2fx slower", gpu.Name, ts/tc)
		}
	}
	// On the CPU the gap must be far smaller.
	tc := IntelI7.KernelTime(coalesced)
	ts := IntelI7.KernelTime(scattered)
	if ts > tc*2 {
		t.Errorf("CPU coalescing penalty too harsh: %.2fx", ts/tc)
	}
}

func TestLocalMemoryCheapOnGPU(t *testing.T) {
	global := wl(1_000_000, 50_000_000, 0, 0, 0.5, 0, 1<<20)
	local := wl(1_000_000, 10_000_000, 40_000_000, 0, 0.5, 0, 1<<20)
	for _, gpu := range []*Device{AMDTahiti, NVIDIAGTX970} {
		if gpu.KernelTime(local) >= gpu.KernelTime(global) {
			t.Errorf("%s: local memory not cheaper than global", gpu.Name)
		}
	}
}

func TestLowParallelismHurtsGPU(t *testing.T) {
	wide := wl(400_000_000, 1_000_000, 0, 0, 1.0, 0, 1<<20)
	narrow := wl(400_000_000, 1_000_000, 0, 0, 1.0, 0, 64)
	for _, gpu := range []*Device{AMDTahiti, NVIDIAGTX970} {
		tw := gpu.KernelTime(wide)
		tn := gpu.KernelTime(narrow)
		if tn < tw*10 {
			t.Errorf("%s: 64 work-items only %.1fx slower than 1M", gpu.Name, tn/tw)
		}
	}
}

func TestCPUNoTransferCost(t *testing.T) {
	if got := IntelI7.TransferTime(1 << 30); got != 0 {
		t.Errorf("CPU transfer time = %g", got)
	}
	if AMDTahiti.TransferTime(1<<30) <= 0 {
		t.Error("GPU transfer free")
	}
}

func TestRuntimeMonotonicInWork(t *testing.T) {
	err := quick.Check(func(flops uint32, mem uint32) bool {
		f := int64(flops%1_000_000) + 1
		g := int64(mem%1_000_000) + 1
		small := wl(f, g, 0, 0, 0.8, 1<<16, 4096)
		large := wl(f*2, g*2, 0, 0, 0.8, 1<<16, 4096)
		for _, d := range []*Device{IntelI7, AMDTahiti, NVIDIAGTX970} {
			if d.Runtime(large) < d.Runtime(small) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRuntimePositive(t *testing.T) {
	err := quick.Check(func(flops, mem, branches uint16, coal float64, transfer uint32) bool {
		c := coal - float64(int(coal)) // into [0,1)
		if c < 0 {
			c = -c
		}
		w := wl(int64(flops), int64(mem), 0, int64(branches), c, int64(transfer), 1024)
		for _, d := range []*Device{IntelI7, AMDTahiti, NVIDIAGTX970} {
			if d.Runtime(w) <= 0 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestTable4Specs(t *testing.T) {
	if IntelI7.Cores != 4 || IntelI7.GFLOPS != 105 {
		t.Errorf("i7 specs: %+v", IntelI7)
	}
	if AMDTahiti.Cores != 2048 || AMDTahiti.FreqMHz != 1000 {
		t.Errorf("Tahiti specs: %+v", AMDTahiti)
	}
	if NVIDIAGTX970.Cores != 1664 || NVIDIAGTX970.FreqMHz != 1050 {
		t.Errorf("GTX970 specs: %+v", NVIDIAGTX970)
	}
	if SystemAMD.GPU != AMDTahiti || SystemNVIDIA.GPU != NVIDIAGTX970 {
		t.Error("system pairing wrong")
	}
}

func TestCrossoverExists(t *testing.T) {
	// Sweep data size for a balanced kernel: the best device must flip
	// from CPU (small) to GPU (large) somewhere — the crossover that makes
	// the mapping problem non-trivial.
	var sawCPU, sawGPU bool
	for _, n := range []int64{1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 24} {
		w := wl(n*200, n*3, 0, n, 1.0, n*4, n)
		best, _, _ := SystemAMD.BestDevice(w)
		if best.Type == CPU {
			sawCPU = true
		} else {
			sawGPU = true
		}
	}
	if !sawCPU || !sawGPU {
		t.Errorf("no CPU/GPU crossover across sizes (cpu=%v gpu=%v)", sawCPU, sawGPU)
	}
}

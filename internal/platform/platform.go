// Package platform models the paper's experimental hardware (Table 4) as
// analytic performance models over the dynamic execution profiles produced
// by internal/interp. It substitutes for physical OpenCL devices: the
// predictive-modeling experiments need realistic runtimes whose CPU↔GPU
// crossover depends on exactly the mechanisms the Grewe et al. features
// capture — host↔device transfer cost, parallelism, memory coalescing,
// local-memory usage, and branching.
package platform

import (
	"fmt"

	"clgen/internal/interp"
)

// DeviceType distinguishes CPUs from GPUs.
type DeviceType int

// Device types.
const (
	CPU DeviceType = iota
	GPU
)

// String returns "CPU" or "GPU".
func (t DeviceType) String() string {
	if t == CPU {
		return "CPU"
	}
	return "GPU"
}

// Device is one compute device with its performance characteristics.
type Device struct {
	Name    string
	Type    DeviceType
	Cores   int
	FreqMHz float64
	MemGB   float64
	// GFLOPS is peak single-precision throughput (Table 4).
	GFLOPS float64
	// MemBandwidthGBs is device memory bandwidth.
	MemBandwidthGBs float64
	// PCIeGBs is host↔device transfer bandwidth; 0 means the device shares
	// host memory (CPUs) and pays no transfer cost.
	PCIeGBs float64
	// TransferLatencyS is the fixed per-launch transfer setup latency.
	TransferLatencyS float64
	// LaunchOverheadS is the fixed kernel-launch overhead.
	LaunchOverheadS float64
	// UncoalescedPenalty multiplies the cost of uncoalesced global accesses.
	UncoalescedPenalty float64
	// BranchOpWeight is the cost of one dynamic branch in equivalent
	// arithmetic operations (GPU divergence makes this large).
	BranchOpWeight float64
	// BarrierOpWeight is the cost of one per-work-item barrier event in
	// equivalent operations (hardware sync on GPUs, scheduler round-trips
	// on CPU OpenCL runtimes).
	BarrierOpWeight float64
	// LocalMemBonus divides the cost of local-memory traffic relative to
	// global traffic (on-chip shared memory on GPUs).
	LocalMemBonus float64
	// ParallelGrain is the number of in-flight work-items needed to reach
	// peak throughput; below it, utilization scales linearly.
	ParallelGrain float64
}

// Table 4 devices. Bandwidths and bus figures follow the parts' public
// specifications; penalty constants are calibrated so that the qualitative
// behaviour (who wins where) matches the paper's measurements.
var (
	// IntelI7 is the Core i7-3820 host CPU of both systems.
	IntelI7 = &Device{
		Name: "Intel Core i7-3820", Type: CPU,
		Cores: 4, FreqMHz: 3600, MemGB: 8,
		GFLOPS:             105,
		MemBandwidthGBs:    51.2,
		PCIeGBs:            0, // shares host memory
		LaunchOverheadS:    15e-6,
		UncoalescedPenalty: 1.6, // cache misses hurt, but caches help
		BranchOpWeight:     2,
		BarrierOpWeight:    150,
		LocalMemBonus:      1, // "local" memory is ordinary cache on CPUs
		ParallelGrain:      32,
	}
	// AMDTahiti is the AMD Tahiti 7970 GPU.
	AMDTahiti = &Device{
		Name: "AMD Tahiti 7970", Type: GPU,
		Cores: 2048, FreqMHz: 1000, MemGB: 3,
		GFLOPS:             3790,
		MemBandwidthGBs:    264,
		PCIeGBs:            6,
		TransferLatencyS:   80e-6,
		LaunchOverheadS:    40e-6,
		UncoalescedPenalty: 8,
		BranchOpWeight:     10,
		BarrierOpWeight:    4,
		LocalMemBonus:      8,
		ParallelGrain:      16384,
	}
	// IntelI7NV is the same Core i7-3820 as driven on the NVIDIA system.
	// The two systems run different OpenCL stacks (Table 4: AMD 1526.3 vs
	// NVIDIA 361.42); the paper's measurements make the CPU markedly less
	// competitive on the NVIDIA system — its best static mapping is
	// GPU-only there versus CPU-only on the AMD system. The derating
	// models the weaker CPU OpenCL runtime, not different silicon.
	IntelI7NV = &Device{
		Name: "Intel Core i7-3820 (NVIDIA-system driver)", Type: CPU,
		Cores: 4, FreqMHz: 3600, MemGB: 8,
		GFLOPS:             105 * 0.30,
		MemBandwidthGBs:    51.2 * 0.55,
		PCIeGBs:            0,
		LaunchOverheadS:    60e-6,
		UncoalescedPenalty: 1.8,
		BranchOpWeight:     3,
		BarrierOpWeight:    300,
		LocalMemBonus:      1,
		ParallelGrain:      32,
	}
	// NVIDIAGTX970 is the NVIDIA GTX 970 GPU.
	NVIDIAGTX970 = &Device{
		Name: "NVIDIA GTX 970", Type: GPU,
		Cores: 1664, FreqMHz: 1050, MemGB: 4,
		GFLOPS:             3900,
		MemBandwidthGBs:    224,
		PCIeGBs:            6,
		TransferLatencyS:   70e-6,
		LaunchOverheadS:    35e-6,
		UncoalescedPenalty: 6,
		BranchOpWeight:     8,
		BarrierOpWeight:    4,
		LocalMemBonus:      8,
		ParallelGrain:      13312,
	}
)

// System is a CPU+GPU pair (one experimental platform of Table 4).
type System struct {
	Name string
	CPU  *Device
	GPU  *Device
}

// The two experimental systems.
var (
	SystemAMD    = &System{Name: "AMD", CPU: IntelI7, GPU: AMDTahiti}
	SystemNVIDIA = &System{Name: "NVIDIA", CPU: IntelI7NV, GPU: NVIDIAGTX970}
)

// Workload is everything the performance model needs about one kernel
// execution: the dynamic profile, the statically derived coalescing
// fraction of global accesses, host↔device transfer volume, and the
// element width of global accesses in bytes.
type Workload struct {
	Profile       *interp.Profile
	CoalescedFrac float64 // in [0, 1]
	TransferBytes int64
	AccessBytes   int   // bytes per global access (default 4)
	WorkItems     int64 // total work-items of the launch
}

func (w *Workload) accessBytes() float64 {
	if w.AccessBytes <= 0 {
		return 4
	}
	return float64(w.AccessBytes)
}

// KernelTime returns modeled device-compute seconds (no transfers).
func (d *Device) KernelTime(w Workload) float64 {
	p := w.Profile
	util := 1.0
	if wi := float64(w.WorkItems); wi > 0 && wi < d.ParallelGrain {
		util = wi / d.ParallelGrain
		// A single busy lane still runs at core speed, not peak/grain:
		// floor utilization at one core's share of the device.
		if floor := 1 / float64(d.Cores); util < floor {
			util = floor
		}
	}
	ops := float64(p.IntOps+p.FloatOps) +
		float64(p.Branches)*d.BranchOpWeight +
		float64(p.Barriers)*d.BarrierOpWeight +
		float64(p.Atomics)*8
	computeT := ops / (d.GFLOPS * 1e9 * util)

	coal := w.CoalescedFrac
	if coal < 0 {
		coal = 0
	}
	if coal > 1 {
		coal = 1
	}
	globalBytes := float64(p.GlobalMemOps()) * w.accessBytes()
	effBytes := globalBytes * (coal + (1-coal)*d.UncoalescedPenalty)
	localBytes := float64(p.LocalMemOps()) * w.accessBytes() / d.LocalMemBonus
	memT := (effBytes + localBytes) / (d.MemBandwidthGBs * 1e9)
	if d.Type == GPU {
		// Memory-parallelism: below the grain the memory system is also
		// underutilized, but less sharply (memory-level parallelism
		// saturates earlier than ALUs).
		if wi := float64(w.WorkItems); wi > 0 && wi < d.ParallelGrain/4 {
			scale := wi / (d.ParallelGrain / 4)
			if floor := 4 / float64(d.Cores); scale < floor {
				scale = floor
			}
			memT /= scale
		}
	}

	// Compute and memory overlap on both device classes: the slower
	// pipeline dominates, the faster hides behind it.
	pipeT := computeT
	if memT > pipeT {
		pipeT = memT
	}
	return pipeT
}

// TransferTime returns modeled host↔device transfer seconds.
func (d *Device) TransferTime(bytes int64) float64 {
	if d.PCIeGBs <= 0 || bytes <= 0 {
		return 0
	}
	return d.TransferLatencyS + float64(bytes)/(d.PCIeGBs*1e9)
}

// Runtime returns total modeled seconds for one kernel execution including
// data transfers and launch overhead — the quantity the paper's
// methodology measures ("execution time includes both device compute time
// and the data transfer overheads", §7.2).
func (d *Device) Runtime(w Workload) float64 {
	return d.LaunchOverheadS + d.TransferTime(w.TransferBytes) + d.KernelTime(w)
}

// BestDevice returns the faster device of the system for a workload and
// both runtimes.
func (s *System) BestDevice(w Workload) (best *Device, cpuTime, gpuTime float64) {
	cpuTime = s.CPU.Runtime(w)
	gpuTime = s.GPU.Runtime(w)
	if cpuTime <= gpuTime {
		return s.CPU, cpuTime, gpuTime
	}
	return s.GPU, cpuTime, gpuTime
}

// String summarizes the device.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%s, %d cores @ %.0f MHz, %.2f TFLOPS)",
		d.Name, d.Type, d.Cores, d.FreqMHz, d.GFLOPS/1000)
}

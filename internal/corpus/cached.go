// Content-addressed memoization of the corpus pipeline's pure stages
// (internal/cache). Two computations are cached here:
//
//   - the whole per-file §4.1 stage (both rejection-filter passes, shim
//     stripping, kernel-unit splitting, rewriting) keyed by file content,
//     and
//   - rejection-filter verdicts keyed by (content, FilterOpts), shared by
//     sample synthesis and the Figure 9 top-up.
//
// Cached values are serializable mirrors of the live results with every
// mutable structure (ASTs, identifier maps) reduced to plain data, so a
// cache hit can never alias state a consumer mutates. Versions compose
// the stamps of every computation the stage depends on — bumping the
// analyzer, rewriter, or IR lowering invalidates persistent entries.
package corpus

import (
	"errors"
	"fmt"
	"time"

	"clgen/internal/analysis"
	"clgen/internal/cache"
	"clgen/internal/features"
	"clgen/internal/github"
	"clgen/internal/ir"
	"clgen/internal/rewriter"
)

// fileVersion stamps cached per-file outcomes: the stage runs the filter
// (analysis + IR), the rewriter, and — in precise mode — both feature
// extractors, so all their stamps participate.
const fileVersion = "corpus-file-v2|" + analysis.Version + "|" + rewriter.Version + "|" + ir.Version + "|" + features.Version

// filterVersion stamps cached filter verdicts (no rewriting involved).
const filterVersion = "corpus-filter-v1|" + analysis.Version + "|" + ir.Version

// cachedUnit mirrors unitOutcome in plain serializable data.
type cachedUnit struct {
	Text        string   `json:"text"`
	Kernels     int      `json:"kernels"`
	IdentsAfter []string `json:"idents_after,omitempty"`
}

// cachedFeatPair mirrors featPair in plain serializable data.
type cachedFeatPair struct {
	Kernel string    `json:"kernel"`
	Heur   []float64 `json:"heur,omitempty"`
	Prec   []float64 `json:"prec,omitempty"`
}

// cachedFileOutcome mirrors fileOutcome: identifier sets flatten to
// slices and the error to its message. Wall time is never cached — the
// consumer restamps it with the (hit or miss) elapsed time.
type cachedFileOutcome struct {
	Lines          int              `json:"lines"`
	NoShimRejected bool             `json:"no_shim_rejected,omitempty"`
	Reason         string           `json:"reason,omitempty"`
	IdentsBefore   []string         `json:"idents_before,omitempty"`
	Units          []cachedUnit     `json:"units,omitempty"`
	FeatPairs      []cachedFeatPair `json:"feat_pairs,omitempty"`
	Err            string           `json:"err,omitempty"`
}

func setToSlice(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	s := make([]string, 0, len(m))
	for k := range m {
		s = append(s, k)
	}
	return s
}

func sliceToSet(s []string) map[string]bool {
	m := make(map[string]bool, len(s))
	for _, k := range s {
		m[k] = true
	}
	return m
}

func toCachedOutcome(o fileOutcome) cachedFileOutcome {
	c := cachedFileOutcome{
		Lines:          o.lines,
		NoShimRejected: o.noShimRejected,
		Reason:         string(o.reason),
		IdentsBefore:   setToSlice(o.identsBefore),
	}
	if o.err != nil {
		c.Err = o.err.Error()
	}
	for _, u := range o.units {
		c.Units = append(c.Units, cachedUnit{
			Text: u.text, Kernels: u.kernels, IdentsAfter: setToSlice(u.identsAfter),
		})
	}
	for _, p := range o.featPairs {
		c.FeatPairs = append(c.FeatPairs, cachedFeatPair{Kernel: p.kernel, Heur: p.heur, Prec: p.prec})
	}
	return c
}

func fromCachedOutcome(c cachedFileOutcome) fileOutcome {
	o := fileOutcome{
		lines:          c.Lines,
		noShimRejected: c.NoShimRejected,
		reason:         RejectReason(c.Reason),
	}
	if len(c.IdentsBefore) > 0 {
		o.identsBefore = sliceToSet(c.IdentsBefore)
	}
	if c.Err != "" {
		o.err = errors.New(c.Err)
	}
	for _, u := range c.Units {
		o.units = append(o.units, unitOutcome{
			text: u.Text, kernels: u.Kernels, identsAfter: sliceToSet(u.IdentsAfter),
		})
	}
	for _, p := range c.FeatPairs {
		o.featPairs = append(o.featPairs, featPair{kernel: p.Kernel, heur: p.Heur, prec: p.Prec})
	}
	return o
}

var fileMemo = cache.New(cache.Config[cachedFileOutcome]{
	Name:    "file",
	Version: fileVersion,
	Disk:    true,
	Size: func(c cachedFileOutcome) int {
		n := 64
		for _, u := range c.Units {
			n += len(u.Text) + 16*len(u.IdentsAfter)
		}
		return n + 16*len(c.IdentsBefore)
	},
})

// processFileCached is processFile behind the "file" memo. The second
// result reports a cache hit (memory, disk, or a collapsed concurrent
// computation of the same content) for journal attribution.
func processFileCached(cf github.ContentFile, static bool) (fileOutcome, bool) {
	start := time.Now()
	// Precise mode participates in the key: the outcome carries feature
	// pairs only when it is on, and a heuristic-mode hit must not starve a
	// precise run of them (or vice versa).
	key := cache.Key(fmt.Sprintf("static=%t,precise=%t", static, features.Precise()), cf.Text)
	c, hit, err := fileMemo.Do(key, func() (cachedFileOutcome, error) {
		return toCachedOutcome(processFile(cf, static)), nil
	})
	if err != nil {
		// The compute callback never errors; defensive fallback.
		return processFile(cf, static), false
	}
	o := fromCachedOutcome(c)
	o.cacheHit = hit
	o.durMS = float64(time.Since(start)) / float64(time.Millisecond)
	return o, hit
}

// filterVerdict is the serializable, verdict-only part of FilterResult.
type filterVerdict struct {
	OK           bool   `json:"ok,omitempty"`
	Reason       string `json:"reason,omitempty"`
	Instrs       int    `json:"instrs,omitempty"`
	Predicted    string `json:"predicted,omitempty"`
	StaticReject bool   `json:"static_reject,omitempty"`
}

var filterMemo = cache.New(cache.Config[filterVerdict]{
	Name:    "filter",
	Version: filterVersion,
	Disk:    true,
})

// FilterCached is FilterEx behind the "filter" memo, for callers that
// only consume the verdict (sample synthesis, the Figure 9 top-up). The
// result is verdict-only — File and Static are nil on miss as well as on
// hit, so warm and cold runs see identical values. The second result
// reports a cache hit.
func FilterCached(src string, opts FilterOpts) (FilterResult, bool) {
	key := cache.Key(fmt.Sprintf("shim=%t,static=%t", opts.Shim, opts.Static), src)
	v, hit, err := filterMemo.Do(key, func() (filterVerdict, error) {
		r := FilterEx(src, opts)
		return filterVerdict{
			OK: r.OK, Reason: string(r.Reason), Instrs: r.Instrs,
			Predicted: r.Predicted, StaticReject: r.StaticReject,
		}, nil
	})
	if err != nil {
		// The compute callback never errors; defensive fallback.
		r := FilterEx(src, opts)
		r.File, r.Static = nil, nil
		return r, false
	}
	return FilterResult{
		OK: v.OK, Reason: RejectReason(v.Reason), Instrs: v.Instrs,
		Predicted: v.Predicted, StaticReject: v.StaticReject,
	}, hit
}

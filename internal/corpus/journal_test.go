package corpus

import (
	"bytes"
	"testing"

	"clgen/internal/github"
	"clgen/internal/journal"
)

// captureJournal runs fn with a temporary process-global journal and
// returns the events it emitted.
func captureJournal(t *testing.T, fn func()) []journal.Event {
	t.Helper()
	var buf bytes.Buffer
	w := journal.NewWriter(&buf, 0)
	journal.SetActive(w)
	defer journal.SetActive(nil)
	fn()
	journal.SetActive(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := journal.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// TestJournalMatchesStatsAcrossWorkers asserts the tentpole invariant for
// the corpus stage: the journal's per-reason corpus_filter tally equals
// Stats.Reasons exactly, and journals taken at different worker counts are
// equivalent after order normalization. Runs under -race via make check.
func TestJournalMatchesStatsAcrossWorkers(t *testing.T) {
	files := github.Mine(github.MinerConfig{Seed: 23, Repos: 40, FilesPerRepo: 8})
	type run struct {
		c      *Corpus
		events []journal.Event
	}
	build := func(workers int) run {
		var c *Corpus
		events := captureJournal(t, func() {
			var err error
			c, err = BuildWorkers(files, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		})
		return run{c: c, events: events}
	}

	runs := map[int]run{}
	for _, workers := range []int{1, 2, 8} {
		r := build(workers)
		runs[workers] = r

		f := journal.Funnel(r.events)
		if f.Mined != r.c.Stats.Files {
			t.Errorf("workers=%d: journal mined=%d, stats files=%d", workers, f.Mined, r.c.Stats.Files)
		}
		if f.CorpusAccepted != r.c.Stats.AcceptedFiles {
			t.Errorf("workers=%d: journal accepted=%d, stats accepted=%d",
				workers, f.CorpusAccepted, r.c.Stats.AcceptedFiles)
		}
		// Per-reason tallies must match exactly — the acceptance criterion.
		if len(f.CorpusReasons) != len(r.c.Stats.Reasons) {
			t.Errorf("workers=%d: journal has %d reasons, stats %d",
				workers, len(f.CorpusReasons), len(r.c.Stats.Reasons))
		}
		for reason, n := range r.c.Stats.Reasons {
			if got := f.CorpusReasons[string(reason)]; got != n {
				t.Errorf("workers=%d: reason %q: journal=%d stats=%d", workers, reason, got, n)
			}
		}
		if f.RewrittenKernels != r.c.Stats.Kernels {
			t.Errorf("workers=%d: journal kernels=%d, stats kernels=%d",
				workers, f.RewrittenKernels, r.c.Stats.Kernels)
		}
	}

	for _, workers := range []int{2, 8} {
		if !journal.Equivalent(runs[1].events, runs[workers].events) {
			t.Errorf("journal at workers=%d not equivalent to workers=1", workers)
		}
	}
}

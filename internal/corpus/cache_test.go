package corpus

import (
	"reflect"
	"testing"

	"clgen/internal/cache"
	"clgen/internal/github"
	"clgen/internal/journal"
	"clgen/internal/telemetry"
)

func cacheCounter(name, memo string) *telemetry.Counter {
	return telemetry.Default().Counter(telemetry.Label(name, "cache", memo), "")
}

// TestColdWarmBuildsIdentical is the tentpole acceptance test for the
// corpus stage: a warm-cache rebuild (persistent tier populated, memory
// flushed to simulate a new process) must produce a byte-identical corpus
// and an equivalent journal, every corpus_filter event on the warm run
// must carry the cache_hit annotation, and the journal's annotation count
// must equal the cache_hits_total{cache="file"} delta exactly.
func TestColdWarmBuildsIdentical(t *testing.T) {
	if err := cache.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.SetDir("") })
	cache.FlushMemory() // other tests may have warmed the memos

	files := github.Mine(github.MinerConfig{Seed: 77, Repos: 30, FilesPerRepo: 6})
	build := func(workers int) (*Corpus, []journal.Event) {
		var c *Corpus
		events := captureJournal(t, func() {
			var err error
			c, err = BuildEx(files, BuildOpts{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
		})
		return c, events
	}

	cold, coldEvents := build(4)

	cache.FlushMemory() // cold start within the process: only disk is warm
	hits0 := cacheCounter("cache_hits_total", "file").Value()
	warm, warmEvents := build(4)
	hitsDelta := cacheCounter("cache_hits_total", "file").Value() - hits0

	// Warmth and worker count must be independent axes: warm rebuilds at
	// other -workers values stay byte-identical and journal-equivalent.
	for _, workers := range []int{1, 8} {
		w, events := build(workers)
		if w.Text != cold.Text {
			t.Errorf("warm workers=%d rebuild changed Corpus.Text", workers)
		}
		if !journal.Equivalent(coldEvents, events) {
			t.Errorf("warm workers=%d journal not equivalent to cold", workers)
		}
	}

	if cold.Text != warm.Text {
		t.Error("warm rebuild changed Corpus.Text")
	}
	if !reflect.DeepEqual(cold.Kernels, warm.Kernels) {
		t.Error("warm rebuild changed Corpus.Kernels")
	}
	if !reflect.DeepEqual(cold.Stats, warm.Stats) {
		t.Errorf("warm rebuild changed Stats:\ncold %+v\nwarm %+v", cold.Stats, warm.Stats)
	}
	if !journal.Equivalent(coldEvents, warmEvents) {
		t.Error("cold and warm journals not equivalent after order normalization")
	}

	// Every per-file outcome on the warm run came from the persistent
	// tier (or a singleflight collapse for duplicate file contents), and
	// the journal attributes each one: annotations == counter delta.
	annotated := journal.Funnel(warmEvents).CacheHits[journal.StageCorpusFilter]
	if annotated != len(files) {
		t.Errorf("warm run annotated %d/%d corpus_filter events as cache hits", annotated, len(files))
	}
	if int64(annotated) != hitsDelta {
		t.Errorf("journal cache_hit annotations = %d, cache_hits_total{cache=file} delta = %d",
			annotated, hitsDelta)
	}
	// The cold run must not have rendered a cache section at all... but
	// duplicate-content files legitimately collapse even cold, so only
	// assert the cold count is strictly smaller than full.
	if coldHits := journal.Funnel(coldEvents).CacheHits[journal.StageCorpusFilter]; coldHits >= len(files) {
		t.Errorf("cold run reported %d cache hits over %d files", coldHits, len(files))
	}
}

// TestFilterCachedMatchesFilterEx asserts warm and cold FilterCached
// calls return the same verdict FilterEx computes, for both plain and
// strict (static) options — the §4.3 sampling path's correctness
// contract.
func TestFilterCachedMatchesFilterEx(t *testing.T) {
	srcs := []string{
		"__kernel void A(__global float* a) {\n  int b = get_global_id(0);\n  a[b] = a[b] * 2;\n}",
		"__kernel void A(__global float* a, int b) {\n  a[0] = 1;\n}", // unused arg: strict rejects
		"int main() { return 0; }", // no kernel
		"not even C {{{",
	}
	for _, src := range srcs {
		for _, opts := range []FilterOpts{{}, {Static: true}} {
			want := FilterEx(src, opts)
			got1, hit1 := FilterCached(src, opts)
			got2, hit2 := FilterCached(src, opts)
			if hit2 != true || got2.File != nil || got2.Static != nil {
				t.Errorf("second call: hit=%v File=%v Static=%v, want verdict-only hit", hit2, got2.File, got2.Static)
			}
			for name, got := range map[string]FilterResult{"cold": got1, "warm": got2} {
				if got.OK != want.OK || got.Reason != want.Reason ||
					got.Instrs != want.Instrs || got.StaticReject != want.StaticReject {
					t.Errorf("%s (static=%t): FilterCached=%+v, FilterEx=%+v", name, opts.Static, got, want)
				}
			}
			_ = hit1
		}
	}
}

// TestFilterCachedKeysOnOptions: the same source under different
// FilterOpts must not share verdicts — the strict analyzer rejects what
// the plain filter accepts.
func TestFilterCachedKeysOnOptions(t *testing.T) {
	// The probe reads an uninitialized local — an Error-severity lint the
	// strict analyzer rejects but the plain §4.3 filter cannot see.
	src := "__kernel void A(__global float* a) {\n  int b;\n  a[get_global_id(0)] = b;\n}"
	plain, _ := FilterCached(src, FilterOpts{})
	strict, _ := FilterCached(src, FilterOpts{Static: true})
	if !plain.OK {
		t.Fatalf("plain filter rejected the probe kernel: %s", plain.Reason)
	}
	if strict.OK {
		t.Fatal("strict filter accepted a kernel that reads an uninitialized variable")
	}
	if !strict.StaticReject {
		t.Errorf("strict rejection not attributed to the analyzer: %+v", strict)
	}
}

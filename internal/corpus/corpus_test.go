package corpus

import (
	"strings"
	"testing"

	"clgen/internal/github"
)

func TestFilterAcceptsGoodKernel(t *testing.T) {
	res := Filter(`__kernel void A(__global float* a, const int n) {
  int i = get_global_id(0);
  if (i < n) {
    a[i] = a[i] * 2.0f;
  }
}`, false)
	if !res.OK {
		t.Fatalf("rejected: %s", res.Reason)
	}
	if res.Instrs < MinInstructions {
		t.Errorf("instr count %d", res.Instrs)
	}
}

func TestFilterRejectsClasses(t *testing.T) {
	cases := []struct {
		src    string
		reason RejectReason
	}{
		{"int main() { cl_context ctx = clCreateContext(); return 0; }", RejectParse}, // host C
		{"int main() { return 0; }", RejectNoKernel},
		{"__kernel void A(__global float* a) { a[0] = undeclared; }", RejectCheck},
		{"float F(float x) { return x * 2.0f; }", RejectNoKernel},
		{"__kernel void A(__global float* a) { }", RejectTooFewInstrs},
		{"#if 1\n__kernel void A(__global float* a) { a[0] = 1.0f; }\n", RejectPreprocess},
	}
	for _, c := range cases {
		res := Filter(c.src, false)
		if res.OK {
			t.Errorf("accepted %q", c.src)
			continue
		}
		if res.Reason != c.reason {
			t.Errorf("Filter(%q) reason = %q, want %q", c.src, res.Reason, c.reason)
		}
	}
}

func TestShimFixesInferredTypes(t *testing.T) {
	src := `__kernel void A(__global FLOAT_T* a, const INDEX_TYPE n) {
  INDEX_TYPE i = get_global_id(0);
  if (i < n) {
    a[i] = a[i] + 1.0f;
  }
}`
	if res := Filter(src, false); res.OK {
		t.Error("FLOAT_T resolved without shim")
	}
	if res := Filter(src, true); !res.OK {
		t.Errorf("shim did not fix inferred types: %s", res.Reason)
	}
}

func TestShimConstants(t *testing.T) {
	src := `__kernel void A(__global float* a) {
  __local float tile[WG_SIZE];
  int lid = get_local_id(0);
  tile[lid] = a[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  a[get_global_id(0)] = tile[WG_SIZE - 1 - lid];
}`
	if res := Filter(src, true); !res.OK {
		t.Errorf("WG_SIZE not supplied by shim: %s", res.Reason)
	}
}

func TestBuildCorpusEndToEnd(t *testing.T) {
	files := github.Mine(github.MinerConfig{Seed: 42, Repos: 40, FilesPerRepo: 8})
	c, err := Build(files)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats
	if s.AcceptedFiles == 0 || s.Kernels == 0 {
		t.Fatalf("empty corpus: %+v", s)
	}
	// The shim must reduce the discard rate (paper: 40% -> 32%).
	if s.DiscardRateShim >= s.DiscardRateNoShim {
		t.Errorf("shim did not reduce discards: %.2f -> %.2f", s.DiscardRateNoShim, s.DiscardRateShim)
	}
	if s.DiscardRateNoShim < 0.25 || s.DiscardRateNoShim > 0.55 {
		t.Errorf("no-shim discard rate %.2f outside the paper's band", s.DiscardRateNoShim)
	}
	if s.DiscardRateShim < 0.15 || s.DiscardRateShim > 0.45 {
		t.Errorf("shim discard rate %.2f outside the paper's band", s.DiscardRateShim)
	}
	// Identifier rewriting must shrink the vocabulary dramatically
	// (paper: 84%).
	if s.VocabReduction() < 0.3 {
		t.Errorf("vocabulary reduction only %.0f%% (%d -> %d)",
			s.VocabReduction()*100, s.VocabBefore, s.VocabAfter)
	}
	// Rewritten corpus has canonical identifiers.
	if strings.Contains(c.Text, "num_elements") {
		t.Error("identifiers not rewritten in corpus text")
	}
	if !strings.Contains(c.Text, "__kernel void A(") {
		t.Error("canonical kernel names missing")
	}
	// All corpus entries individually re-pass the filter.
	for i, k := range c.Kernels {
		if res := FilterSample(k); !res.OK {
			t.Errorf("corpus entry %d fails the filter: %s\n%s", i, res.Reason, k)
			if i > 3 {
				break
			}
		}
	}
}

func TestBuildRejectsEmptyMine(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty input accepted")
	}
	junk := []github.ContentFile{{Repo: "r", Path: "a.cl", Text: "not opencl"}}
	if _, err := Build(junk); err == nil {
		t.Error("all-junk input accepted")
	}
}

func TestReasonsSummary(t *testing.T) {
	s := Stats{Reasons: map[RejectReason]int{RejectParse: 5, RejectCheck: 2}}
	out := s.ReasonsSummary()
	if !strings.Contains(out, "parse error") || !strings.Contains(out, "semantic error") {
		t.Errorf("summary: %q", out)
	}
	if strings.Index(out, "parse") > strings.Index(out, "semantic") {
		t.Error("summary not sorted by count")
	}
}

// Package corpus implements the paper's §4.1 corpus assembly: the shim
// header of inferred types and constants (Listing 1), the rejection filter
// (compile + minimum static instruction count), and the full content-file →
// language-corpus pipeline with the statistics the paper reports (discard
// rates with and without the shim, kernel counts, vocabulary reduction).
package corpus

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"clgen/internal/analysis"
	"clgen/internal/clc"
	"clgen/internal/features"
	"clgen/internal/github"
	"clgen/internal/ir"
	"clgen/internal/journal"
	"clgen/internal/pool"
	"clgen/internal/rewriter"
	"clgen/internal/telemetry"
)

// MinInstructions is the rejection filter's minimum static instruction
// count (§4.1: "a minimum static instruction count of three").
const MinInstructions = 3

// ShimHeader is this reproduction's Listing 1: inferred type aliases and
// constants for OpenCL found in the wild, injected via `#include
// <clc/clc.h>` or by predefining the macros directly.
const ShimHeader = `/* Enable OpenCL features */
#define cl_clang_storage_class_specifiers
#define cl_khr_fp64

/* Inferred types */
typedef float FLOAT_T;
typedef float FLOAT_TYPE;
typedef unsigned int INDEX_TYPE;
typedef double REAL_T;
typedef double REAL_TYPE;
typedef float DATA_TYPE;
typedef int INT_TYPE;
typedef unsigned int UINT_TYPE;
typedef float VALUE_TYPE;

/* Inferred constants */
#define WG_SIZE 128
#define WORKGROUP_SIZE 128
#define GROUP_SIZE 128
#define BLOCK_SIZE 16
#define TILE_SIZE 16
#define LOCAL_SIZE 64
#define NUM_ELEMENTS 1024
#define DATA_SIZE 1024
#define ALPHA_CONST 2.5f
#define EPS 1e-6f
`

// ShimPreprocessor returns a preprocessor whose header table serves the
// shim for `#include <clc/clc.h>` and which predefines the shim contents so
// files that never wrote the include still resolve the identifiers —
// mirroring how the paper "injects" the shim.
func ShimPreprocessor() *clc.Preprocessor {
	return &clc.Preprocessor{
		Headers: map[string]string{
			"clc/clc.h": ShimHeader,
			"clc.h":     ShimHeader,
		},
		Defines: map[string]string{
			"cl_clang_storage_class_specifiers": "1",
			"cl_khr_fp64":                       "1",
			"WG_SIZE":                           "128",
			"WORKGROUP_SIZE":                    "128",
			"GROUP_SIZE":                        "128",
			"BLOCK_SIZE":                        "16",
			"TILE_SIZE":                         "16",
			"LOCAL_SIZE":                        "64",
			"NUM_ELEMENTS":                      "1024",
			"DATA_SIZE":                         "1024",
			"ALPHA_CONST":                       "2.5f",
			"EPS":                               "1e-6f",
		},
	}
}

// shimTypedefs is prepended to sources when filtering with the shim, to
// supply the inferred typedefs (the Defines table above only covers
// constants).
const shimTypedefs = `typedef float FLOAT_T;
typedef float FLOAT_TYPE;
typedef unsigned int INDEX_TYPE;
typedef double REAL_T;
typedef double REAL_TYPE;
typedef float DATA_TYPE;
typedef int INT_TYPE;
typedef unsigned int UINT_TYPE;
typedef float VALUE_TYPE;
`

// RejectReason classifies why the rejection filter discarded an input.
type RejectReason string

// Reject reasons.
const (
	Accepted           RejectReason = ""
	RejectPreprocess   RejectReason = "preprocess error"
	RejectParse        RejectReason = "parse error"
	RejectCheck        RejectReason = "semantic error"
	RejectNoKernel     RejectReason = "no kernel function"
	RejectTooFewInstrs RejectReason = "fewer than 3 static instructions"
)

// StaticReason labels a rejection produced by the static analyzer, naming
// the blocking lint ("static: oob-index"). Static reasons extend the base
// RejectReason values in Stats.Reasons and journal filter events.
func StaticReason(lint string) RejectReason {
	return RejectReason("static: " + lint)
}

// FilterOpts configures the rejection filter.
type FilterOpts struct {
	// Shim injects the §4.1 shim header of inferred types and constants.
	Shim bool
	// Static additionally runs the internal/analysis CFG+dataflow passes
	// (strict mode): error-severity diagnostics reject the input, and dead
	// statements no longer count toward the instruction minimum.
	Static bool
}

// FilterResult is the outcome of the rejection filter on one input.
type FilterResult struct {
	OK     bool
	Reason RejectReason
	File   *clc.File // parsed file when OK
	Instrs int       // static instruction count when compiled
	// Static is the analyzer's report (FilterOpts.Static only), retained
	// for compiling inputs even when they are rejected.
	Static *analysis.Report
	// Predicted is the analyzer's §5.2 forecast for the first kernel — the
	// one the driver would load ("" = expected to pass the checker).
	Predicted string
	// StaticReject marks rejections the static analyzer caused: the input
	// compiles and would have been accepted by the base filter.
	StaticReject bool
}

// Filter runs the §4.1 rejection filter: attempt to compile the input (our
// analogue of compiling to NVIDIA PTX) and require at least
// MinInstructions static instructions. withShim injects the shim header.
func Filter(src string, withShim bool) FilterResult {
	return FilterEx(src, FilterOpts{Shim: withShim})
}

// FilterEx is Filter with full options.
func FilterEx(src string, opts FilterOpts) FilterResult {
	var pp *clc.Preprocessor
	if opts.Shim {
		pp = ShimPreprocessor()
		src = shimTypedefs + src
	} else {
		pp = &clc.Preprocessor{}
	}
	expanded, err := pp.Preprocess(src)
	if err != nil {
		return FilterResult{Reason: RejectPreprocess}
	}
	f, err := clc.Parse(expanded)
	if err != nil {
		return FilterResult{Reason: RejectParse}
	}
	if err := clc.Check(f); err != nil {
		return FilterResult{Reason: RejectCheck}
	}
	if len(f.Kernels()) == 0 {
		return FilterResult{Reason: RejectNoKernel}
	}
	prog := ir.Lower(f)
	n := prog.StaticInstructionCount()
	if n < MinInstructions {
		return FilterResult{Reason: RejectTooFewInstrs, Instrs: n}
	}
	res := FilterResult{OK: true, File: f, Instrs: n}
	if opts.Static {
		rep := analysis.Analyze(f)
		res.Static = rep
		res.Predicted = rep.PredictedVerdict(f.Kernels()[0].Name)
		if d := rep.PrimaryError(); d != nil {
			res.OK, res.File = false, nil
			res.Reason, res.StaticReject = StaticReason(d.Lint), true
			return res
		}
		if n-rep.DeadOps < MinInstructions {
			// Dead statements don't count toward the §4.1 instruction
			// minimum in strict mode: a kernel of provably unread stores
			// is as empty as one with no stores at all.
			res.OK, res.File = false, nil
			res.Reason, res.StaticReject = StaticReason("dead-code"), true
			return res
		}
	}
	return res
}

// FilterSample applies the rejection filter to a model-synthesized kernel
// (§4.3 reuses the same filter; samples never need the shim).
func FilterSample(src string) FilterResult {
	return Filter(src, false)
}

// Stats summarizes one corpus build, mirroring the quantities of §4.1.
type Stats struct {
	Files         int // content files in
	Lines         int // raw line count in
	AcceptedFiles int
	AcceptedLines int
	// Discard rates over files, without and with the shim header.
	DiscardRateNoShim float64
	DiscardRateShim   float64
	Kernels           int // kernel functions in the final corpus
	CorpusLines       int // lines after rewriting
	// Bag-of-words identifier vocabulary before and after rewriting.
	VocabBefore int
	VocabAfter  int
	// Rejection reasons (with shim), for diagnostics.
	Reasons map[RejectReason]int
}

// VocabReduction returns the fractional reduction in identifier vocabulary
// achieved by the rewriter (the paper reports 84%).
func (s *Stats) VocabReduction() float64 {
	if s.VocabBefore == 0 {
		return 0
	}
	return 1 - float64(s.VocabAfter)/float64(s.VocabBefore)
}

// Corpus is the final language corpus: rewritten, concatenated OpenCL.
type Corpus struct {
	Text    string
	Kernels []string // individual rewritten kernels (one file each)
	Stats   Stats
}

// fileOutcome is the result of the per-file pipeline stage: everything
// Build's sequential aggregation needs, computed by one pure function of
// the content file so the fan-out parallelizes without ordering effects.
type fileOutcome struct {
	lines          int
	noShimRejected bool
	reason         RejectReason // Accepted when the file survived
	identsBefore   map[string]bool
	units          []unitOutcome
	featPairs      []featPair // per-kernel heuristic/precise feature vectors
	err            error
	durMS          float64 // wall time of the per-file stage, for the journal
	cacheHit       bool    // outcome served by internal/cache, for the journal
}

// featPair carries one kernel's static feature vector under both
// extraction modes (journal.FeatureNames order). Computed only in
// precise mode, where the feature-agreement journal events need both.
type featPair struct {
	kernel     string
	heur, prec []float64
}

// unitOutcome is one rewritten per-kernel unit of an accepted file.
type unitOutcome struct {
	text        string
	kernels     int
	identsAfter map[string]bool
}

// processFile runs the heavy per-file work of §4.1 — both rejection-filter
// passes, shim stripping, kernel-unit splitting, and rewriting — with no
// shared state.
func processFile(cf github.ContentFile, static bool) (o fileOutcome) {
	start := time.Now()
	defer func() { o.durMS = float64(time.Since(start)) / float64(time.Millisecond) }()
	o = fileOutcome{lines: cf.Lines()}
	o.noShimRejected = !Filter(cf.Text, false).OK
	res := FilterEx(cf.Text, FilterOpts{Shim: true, Static: static})
	if !res.OK {
		o.reason = res.Reason
		return o
	}
	stripShimDecls(res.File)
	if features.Precise() {
		o.featPairs = featurePairs(res.File)
	}
	o.identsBefore = map[string]bool{}
	collectIdents(res.File, o.identsBefore)
	// Split the file into per-kernel units — the corpus is a collection
	// of kernel functions (§4.1 reports 9487 of them), each carrying
	// the helper functions it calls — then rewrite every unit from a
	// clean slate so identifier numbering is consistent corpus-wide.
	for _, unit := range splitKernelUnits(res.File) {
		normalized := rewriter.NormalizeParsed(unit)
		reparsed, err := clc.Parse(normalized)
		if err != nil {
			o.err = fmt.Errorf("corpus: rewritten unit no longer parses: %w", err)
			return o
		}
		idents := map[string]bool{}
		collectIdents(reparsed, idents)
		o.units = append(o.units, unitOutcome{
			text:        normalized,
			kernels:     len(reparsed.Kernels()),
			identsAfter: idents,
		})
	}
	return o
}

// featurePairs extracts every kernel's static features under both the
// heuristic and the precise mode, paired by kernel name, for the
// feature-agreement journal events. Extraction errors drop the file's
// pairs rather than the file — agreement reporting is observability,
// not a filter stage.
func featurePairs(f *clc.File) []featPair {
	ps, err := features.Pairs(f)
	if err != nil {
		return nil
	}
	pairs := make([]featPair, len(ps))
	for i, p := range ps {
		pairs[i] = featPair{kernel: p.Kernel, heur: p.Heur, prec: p.Prec}
	}
	return pairs
}

// Build runs the full pipeline over mined content files: rejection
// filtering (recording the no-shim discard rate for comparison), code
// rewriting, and corpus concatenation. Per-file work fans out over the
// pool's default worker count; see BuildEx.
func Build(files []github.ContentFile) (*Corpus, error) {
	return BuildEx(files, BuildOpts{})
}

// BuildWorkers is Build with an explicit worker count (<= 0 means the pool
// default).
func BuildWorkers(files []github.ContentFile, workers int) (*Corpus, error) {
	return BuildEx(files, BuildOpts{Workers: workers})
}

// BuildOpts configures a corpus build.
type BuildOpts struct {
	// Workers is the per-file fan-out width (<= 0 means the pool default).
	Workers int
	// Static enables the analyzer-backed strict mode of the rejection
	// filter (FilterOpts.Static) on every content file.
	Static bool
}

// BuildEx is Build with full options. The per-file stage is pure and
// results are aggregated in file order, so the corpus is byte-identical
// for every worker count.
func BuildEx(files []github.ContentFile, opts BuildOpts) (*Corpus, error) {
	span := telemetry.Start("corpus.build")
	defer span.End()
	reg := telemetry.Default()
	c := &Corpus{}
	c.Stats.Reasons = map[RejectReason]int{}
	var rejectedNoShim int
	identsBefore := map[string]bool{}
	identsAfter := map[string]bool{}
	var text strings.Builder

	outcomes := pool.Map(opts.Workers, len(files), func(i int) fileOutcome {
		done := telemetry.BeginWorkf("corpus.build", "%s/%s", files[i].Repo, files[i].Path)
		defer done()
		o, _ := processFileCached(files[i], opts.Static)
		return o
	})
	// Journal emission happens here in the ordered fold (not in the worker
	// fn) so the event stream is deterministic for every worker count.
	for i, o := range outcomes {
		var fileID string
		if journal.Enabled() {
			fileID = journal.ID(files[i].Text)
			journal.Emit(journal.Event{ID: fileID, Stage: journal.StageMined, Item: i})
		}
		c.Stats.Files++
		c.Stats.Lines += o.lines
		reg.Counter("corpus_files_total", "Content files entering the rejection filter.").Inc()
		if o.noShimRejected {
			rejectedNoShim++
		}
		if o.reason != Accepted {
			c.Stats.Reasons[o.reason]++
			reg.Counter(telemetry.Label("corpus_files_discarded_total", "reason", string(o.reason)),
				"Content files discarded by the rejection filter, by reason.").Inc()
			journal.Emit(journal.Event{ID: fileID, Stage: journal.StageCorpusFilter,
				Reason: string(o.reason), CacheHit: o.cacheHit, DurMS: o.durMS})
			continue
		}
		if o.err != nil {
			return nil, o.err
		}
		if o.noShimRejected {
			// The shim header recovered a file the bare filter discarded
			// (the paper's 40% -> 32% discard-rate improvement).
			reg.Counter("corpus_shim_recovered_total",
				"Files rejected without the shim header but accepted with it.").Inc()
		}
		reg.Counter("corpus_files_accepted_total", "Content files surviving the rejection filter.").Inc()
		journal.Emit(journal.Event{ID: fileID, Stage: journal.StageCorpusFilter,
			Recovered: o.noShimRejected, CacheHit: o.cacheHit, DurMS: o.durMS})
		if journal.Enabled() {
			for _, p := range o.featPairs {
				journal.Emit(journal.Event{ID: fileID, Stage: journal.StageFeatures,
					Kernel: p.kernel, FeatHeur: p.heur, FeatPrec: p.prec})
			}
		}
		c.Stats.AcceptedFiles++
		c.Stats.AcceptedLines += o.lines
		for id := range o.identsBefore {
			identsBefore[id] = true
		}
		for _, u := range o.units {
			for id := range u.identsAfter {
				identsAfter[id] = true
			}
			if journal.Enabled() {
				journal.Emit(journal.Event{ID: journal.ID(u.text), Stage: journal.StageRewritten,
					Parent: fileID, Kernels: u.kernels})
			}
			c.Stats.Kernels += u.kernels
			c.Kernels = append(c.Kernels, u.text)
			text.WriteString(u.text)
			text.WriteString("\n")
		}
	}
	if c.Stats.AcceptedFiles == 0 {
		return nil, fmt.Errorf("corpus: no content file survived the rejection filter")
	}
	c.Text = text.String()
	c.Stats.CorpusLines = strings.Count(c.Text, "\n")
	c.Stats.VocabBefore = len(identsBefore)
	c.Stats.VocabAfter = len(identsAfter)
	if c.Stats.Files > 0 {
		c.Stats.DiscardRateNoShim = float64(rejectedNoShim) / float64(c.Stats.Files)
		c.Stats.DiscardRateShim = float64(c.Stats.Files-c.Stats.AcceptedFiles) / float64(c.Stats.Files)
	}
	reg.Counter("corpus_kernels_total", "Kernel functions entering the language corpus.").
		Add(int64(c.Stats.Kernels))
	span.SetAttr("files", c.Stats.Files).SetAttr("accepted", c.Stats.AcceptedFiles).
		SetAttr("kernels", c.Stats.Kernels)
	telemetry.Debug("corpus built",
		"files", c.Stats.Files, "accepted", c.Stats.AcceptedFiles,
		"kernels", c.Stats.Kernels, "discard_shim", c.Stats.DiscardRateShim,
		"discard_noshim", c.Stats.DiscardRateNoShim)
	return c, nil
}

// splitKernelUnits decomposes a translation unit into one unit per kernel,
// each containing the file's non-function declarations, the transitive
// closure of helper functions the kernel calls, and the kernel itself.
// Units are re-parsed from printed source so they share no AST nodes with
// the original (the rewriter mutates in place).
func splitKernelUnits(f *clc.File) []*clc.File {
	var shared []clc.Decl
	funcs := map[string]*clc.FuncDecl{}
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *clc.FuncDecl:
			if x.Body != nil {
				funcs[x.Name] = x
			}
		case *clc.VarDecl, *clc.StructDecl:
			shared = append(shared, d)
		}
	}
	var units []*clc.File
	for _, k := range f.Kernels() {
		if k.Body == nil {
			continue
		}
		var helperNames []string
		seen := map[string]bool{k.Name: true}
		var visit func(fd *clc.FuncDecl)
		visit = func(fd *clc.FuncDecl) {
			clc.Walk(fd.Body, func(n clc.Node) bool {
				call, ok := n.(*clc.CallExpr)
				if !ok {
					return true
				}
				if h, isUser := funcs[call.Fun]; isUser && !seen[call.Fun] {
					seen[call.Fun] = true
					visit(h)
					helperNames = append(helperNames, call.Fun)
				}
				return true
			})
		}
		visit(k)
		decls := append([]clc.Decl(nil), shared...)
		for _, hn := range helperNames {
			decls = append(decls, funcs[hn])
		}
		decls = append(decls, k)
		src := clc.PrintFile(&clc.File{Decls: decls})
		nf, err := clc.Parse(src)
		if err != nil || clc.Check(nf) != nil {
			continue
		}
		units = append(units, nf)
	}
	return units
}

// shimDeclNames are the typedef names injected by the filter; their
// declarations must not leak into the language corpus.
var shimDeclNames = map[string]bool{
	"FLOAT_T": true, "FLOAT_TYPE": true, "INDEX_TYPE": true, "REAL_T": true,
	"REAL_TYPE": true, "DATA_TYPE": true, "INT_TYPE": true, "UINT_TYPE": true,
	"VALUE_TYPE": true,
}

// stripShimDecls removes the typedef declarations that Filter prepended.
// Type resolution already happened at parse time, so dropping the nodes is
// safe.
func stripShimDecls(f *clc.File) {
	var kept []clc.Decl
	for _, d := range f.Decls {
		if td, ok := d.(*clc.TypedefDecl); ok && shimDeclNames[td.Name] {
			continue
		}
		kept = append(kept, d)
	}
	f.Decls = kept
}

// collectIdents gathers the identifier bag-of-words of a file: declared
// names and references (function names, variables, parameters).
func collectIdents(f *clc.File, into map[string]bool) {
	clc.Walk(f, func(n clc.Node) bool {
		switch x := n.(type) {
		case *clc.FuncDecl:
			into[x.Name] = true
			for _, p := range x.Params {
				if p.Name != "" {
					into[p.Name] = true
				}
			}
		case *clc.VarDecl:
			into[x.Name] = true
		case *clc.Ident:
			into[x.Name] = true
		case *clc.CallExpr:
			into[x.Fun] = true
		}
		return true
	})
}

// ReasonsSummary renders the rejection-reason histogram, most common
// first, for diagnostics and the clexp corpus report.
func (s *Stats) ReasonsSummary() string {
	type rc struct {
		r RejectReason
		n int
	}
	var rcs []rc
	for r, n := range s.Reasons {
		rcs = append(rcs, rc{r, n})
	}
	sort.Slice(rcs, func(i, j int) bool {
		if rcs[i].n != rcs[j].n {
			return rcs[i].n > rcs[j].n
		}
		return rcs[i].r < rcs[j].r
	})
	var b strings.Builder
	for _, x := range rcs {
		fmt.Fprintf(&b, "%6d  %s\n", x.n, x.r)
	}
	return b.String()
}

package corpus

import (
	"reflect"
	"testing"

	"clgen/internal/github"
)

// TestBuildDeterministicAcrossWorkers is the corpus half of the
// determinism suite: the parallel per-file stage with ordered aggregation
// must produce a byte-identical corpus (text, kernel list, and statistics)
// for every worker count.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	files := github.Mine(github.MinerConfig{Seed: 23, Repos: 40, FilesPerRepo: 8})
	want, err := BuildWorkers(files, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := BuildWorkers(files, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Text != want.Text {
			t.Fatalf("workers=%d: corpus text differs (len %d vs %d)",
				workers, len(got.Text), len(want.Text))
		}
		if !reflect.DeepEqual(got.Kernels, want.Kernels) {
			t.Fatalf("workers=%d: kernel lists differ", workers)
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Fatalf("workers=%d: stats differ:\n%+v\nvs\n%+v", workers, got.Stats, want.Stats)
		}
	}
}

// TestBuildStaticDeterministicAcrossWorkers repeats the determinism
// check with the analyzer-backed strict filter enabled: the static
// passes are pure functions of each file, so corpus text, kernel list,
// and the Stats.Reasons histogram (which now includes "static: <lint>"
// entries) must not depend on the worker count.
func TestBuildStaticDeterministicAcrossWorkers(t *testing.T) {
	files := github.Mine(github.MinerConfig{Seed: 23, Repos: 40, FilesPerRepo: 8})
	want, err := BuildEx(files, BuildOpts{Workers: 1, Static: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := BuildEx(files, BuildOpts{Workers: workers, Static: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Text != want.Text {
			t.Fatalf("workers=%d: corpus text differs (len %d vs %d)",
				workers, len(got.Text), len(want.Text))
		}
		if !reflect.DeepEqual(got.Kernels, want.Kernels) {
			t.Fatalf("workers=%d: kernel lists differ", workers)
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Fatalf("workers=%d: stats differ:\n%+v\nvs\n%+v", workers, got.Stats, want.Stats)
		}
	}
}

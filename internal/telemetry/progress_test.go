package telemetry

import (
	"testing"
	"time"
)

func withProgress(t *testing.T) *fakeClock {
	t.Helper()
	clk := newFakeClock()
	SetProgressClock(clk.now)
	EnableProgressTracking(true)
	t.Cleanup(func() {
		EnableProgressTracking(false)
		SetProgressClock(nil)
	})
	return clk
}

// TestProgressTracking drives Advance/BeginWorkf over a fake clock and
// checks the snapshot the watchdog consumes.
func TestProgressTracking(t *testing.T) {
	clk := withProgress(t)

	Advance("pool")
	clk.advance(time.Second)
	done := BeginWorkf("core.synthesize", "attempt-%05d", 7)
	snap := Progress()
	if got := snap.InFlight["core.synthesize"]; len(got) != 1 || got[0] != "attempt-00007" {
		t.Fatalf("in-flight = %v, want [attempt-00007]", got)
	}
	if snap.InFlightCount() != 1 {
		t.Fatalf("InFlightCount = %d, want 1", snap.InFlightCount())
	}
	if want := clk.now().Add(-time.Second); !snap.LastAdvance["pool"].Equal(want) {
		t.Fatalf("pool last advance = %v, want %v", snap.LastAdvance["pool"], want)
	}

	clk.advance(time.Second)
	done()
	snap = Progress()
	if snap.InFlightCount() != 0 {
		t.Fatalf("InFlightCount after done = %d, want 0", snap.InFlightCount())
	}
	if !snap.Last.Equal(clk.now()) {
		t.Fatalf("Last = %v, want %v (done counts as advance)", snap.Last, clk.now())
	}
	if !snap.LastAdvance["core.synthesize"].Equal(clk.now()) {
		t.Fatalf("stage last advance not updated by done")
	}
}

// TestProgressDuplicateIDs checks refcounting: two in-flight copies of the
// same ID stay registered until both release.
func TestProgressDuplicateIDs(t *testing.T) {
	withProgress(t)
	d1 := BeginWorkf("s", "same")
	d2 := BeginWorkf("s", "same")
	if got := Progress().InFlight["s"]; len(got) != 1 {
		t.Fatalf("in-flight = %v, want one deduped ID", got)
	}
	d1()
	if got := Progress().InFlight["s"]; len(got) != 1 {
		t.Fatalf("ID released after first done; second copy still running")
	}
	d2()
	if Progress().InFlightCount() != 0 {
		t.Fatalf("in-flight not empty after both dones")
	}
}

// TestProgressDisabled checks the off path: no state accumulates and the
// returned done func is safe to call.
func TestProgressDisabled(t *testing.T) {
	done := BeginWorkf("s", "id-%d", 1)
	done()
	Advance("s")
	if ProgressEnabled() {
		t.Fatal("progress unexpectedly enabled")
	}
	if snap := Progress(); snap.InFlightCount() != 0 || !snap.Last.IsZero() {
		t.Fatalf("state accumulated while disabled: %+v", snap)
	}
}

// TestProgressDisableClears checks disable wipes state so the next arm
// starts fresh.
func TestProgressDisableClears(t *testing.T) {
	withProgress(t)
	Advance("s")
	BeginWorkf("s", "id")
	EnableProgressTracking(false)
	EnableProgressTracking(true)
	if snap := Progress(); snap.InFlightCount() != 0 || len(snap.LastAdvance) != 0 {
		t.Fatalf("state survived disable: %+v", snap)
	}
}

package telemetry

import (
	"os"
	"strings"
	"sync"
	"time"
)

// FaultSleepEnv is the fault-injection fixture behind the perf-smoke and
// stall-smoke CI gates (make perf-smoke): a comma-separated list of
// stage=duration pairs, e.g.
//
//	CLGEN_FAULT_SLEEP="core.synthesize=2s"
//
// The first in-flight artifact of a named stage sleeps for the given
// duration (once per stage per process). That single mechanism exercises
// both gates: with a stall watchdog armed the sleep trips the deadline
// and produces a flight-recorder dump, and without one it inflates the
// stage's wall time past clperf diff's regression threshold. Unset (the
// normal case) the fixture costs one sync.Once and a nil-map check.
const FaultSleepEnv = "CLGEN_FAULT_SLEEP"

// FaultLabelFlipEnv is the fault-injection fixture behind the model-smoke
// CI gate (make model-smoke): when set to a non-empty value, every
// predicted journal event records the *wrong* device as its prediction.
// The falsification is journal-only — the in-memory predictions, figures,
// and tables are untouched — so the run completes normally while the
// recorded accuracy collapses, which must trip `cltrace model diff`'s
// regression gate. Unset (the normal case) the fixture costs one
// sync.Once per process.
const FaultLabelFlipEnv = "CLGEN_FAULT_LABEL_FLIP"

var (
	faultOnce   sync.Once
	faultDelays map[string]time.Duration
	faultFired  map[string]*sync.Once

	flipOnce sync.Once
)

// FaultLabelFlip reports whether the label-flip fixture is armed. The env
// var is re-read on every call (a per-prediction lookup is cheap and lets
// tests arm the fixture with t.Setenv); the warning fires once.
func FaultLabelFlip() bool {
	if os.Getenv(FaultLabelFlipEnv) == "" {
		return false
	}
	flipOnce.Do(func() {
		Warn("fault injection: flipping predicted labels in journal events")
	})
	return true
}

// parseFaultSpec parses "stage=dur,stage=dur"; malformed entries are
// dropped (a fixture must never break a real run).
func parseFaultSpec(spec string) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.LastIndexByte(part, '=')
		if eq <= 0 {
			continue
		}
		d, err := time.ParseDuration(part[eq+1:])
		if err != nil || d <= 0 {
			continue
		}
		out[part[:eq]] = d
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// faultSleep sleeps once per process if stage has an injected delay.
func faultSleep(stage string) {
	faultOnce.Do(func() {
		faultDelays = parseFaultSpec(os.Getenv(FaultSleepEnv))
		faultFired = make(map[string]*sync.Once, len(faultDelays))
		for s := range faultDelays {
			faultFired[s] = &sync.Once{}
		}
	})
	if faultDelays == nil {
		return
	}
	d, ok := faultDelays[stage]
	if !ok {
		return
	}
	faultFired[stage].Do(func() {
		Warn("fault injection: sleeping", "stage", stage, "sleep", d)
		time.Sleep(d)
	})
}

package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracking is the stall watchdog's ground truth: pipeline stages
// call Advance (or the BeginWorkf/done pair) on every completed item, and
// the watchdog in internal/perf compares the last-advance timestamps
// against its deadline. Tracking is disabled by default and near-free
// when off — Advance is one atomic load, BeginWorkf skips even its
// fmt.Sprintf — so emission sites call these unconditionally on hot
// paths.

var progressEnabled atomic.Bool

type progressState struct {
	mu          sync.Mutex
	now         func() time.Time
	last        time.Time
	lastAdvance map[string]time.Time
	inflight    map[string]map[string]int
}

var progress = &progressState{
	now:         time.Now,
	lastAdvance: map[string]time.Time{},
	inflight:    map[string]map[string]int{},
}

// EnableProgressTracking switches the progress registry on or off.
// Turning it off clears all recorded state, so a later enable starts
// fresh. Installed by the stall watchdog; tests drive it directly.
func EnableProgressTracking(on bool) {
	progressEnabled.Store(on)
	if !on {
		progress.mu.Lock()
		progress.last = time.Time{}
		progress.lastAdvance = map[string]time.Time{}
		progress.inflight = map[string]map[string]int{}
		progress.mu.Unlock()
	}
}

// ProgressEnabled reports whether pipeline progress is being tracked.
func ProgressEnabled() bool { return progressEnabled.Load() }

// SetProgressClock replaces the progress registry's time source (tests).
func SetProgressClock(now func() time.Time) {
	progress.mu.Lock()
	defer progress.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	progress.now = now
}

// Advance records one unit of pipeline progress for a named stage. A
// stage that keeps advancing can never be declared stalled.
func Advance(stage string) {
	if !progressEnabled.Load() {
		return
	}
	p := progress
	p.mu.Lock()
	t := p.now()
	p.last = t
	p.lastAdvance[stage] = t
	p.mu.Unlock()
}

var noopDone = func() {}

// BeginWorkf registers one in-flight artifact of a stage — the ID is
// rendered with fmt.Sprintf only when tracking is enabled — and returns
// the done func that releases it (and counts as an Advance). The
// watchdog's flight-recorder dump lists the in-flight artifacts of every
// stage, naming exactly what the pipeline was chewing on when it stalled.
//
// BeginWorkf is also the injection point of the CLGEN_FAULT_SLEEP test
// fixture (see fault.go): the injected delay runs while the artifact is
// registered, so a stall-smoke run dumps a truthful in-flight set.
func BeginWorkf(stage, idFormat string, args ...any) func() {
	if !progressEnabled.Load() {
		faultSleep(stage)
		return noopDone
	}
	id := fmt.Sprintf(idFormat, args...)
	p := progress
	p.mu.Lock()
	m := p.inflight[stage]
	if m == nil {
		m = map[string]int{}
		p.inflight[stage] = m
	}
	m[id]++
	p.mu.Unlock()
	faultSleep(stage)
	return func() {
		p.mu.Lock()
		if m := p.inflight[stage]; m != nil {
			m[id]--
			if m[id] <= 0 {
				delete(m, id)
			}
			if len(m) == 0 {
				delete(p.inflight, stage)
			}
		}
		t := p.now()
		p.last = t
		p.lastAdvance[stage] = t
		p.mu.Unlock()
	}
}

// ProgressSnapshot is a point-in-time view of the progress registry.
type ProgressSnapshot struct {
	// Last is the most recent advance across all stages (zero before the
	// first advance).
	Last time.Time
	// LastAdvance maps each stage to its most recent advance.
	LastAdvance map[string]time.Time
	// InFlight maps each stage to its registered artifact IDs, sorted.
	InFlight map[string][]string
}

// InFlightCount returns the total number of in-flight artifacts.
func (s ProgressSnapshot) InFlightCount() int {
	n := 0
	for _, ids := range s.InFlight {
		n += len(ids)
	}
	return n
}

// Progress captures the current progress state.
func Progress() ProgressSnapshot {
	p := progress
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Last:        p.last,
		LastAdvance: make(map[string]time.Time, len(p.lastAdvance)),
		InFlight:    make(map[string][]string, len(p.inflight)),
	}
	for k, v := range p.lastAdvance {
		s.LastAdvance[k] = v
	}
	for stage, ids := range p.inflight {
		list := make([]string, 0, len(ids))
		for id := range ids {
			list = append(list, id)
		}
		sort.Strings(list)
		s.InFlight[stage] = list
	}
	return s
}

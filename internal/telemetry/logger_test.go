package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedLogger(buf *bytes.Buffer, level Level, enc Encoding) *Logger {
	l := NewLogger(buf, level, enc)
	l.now = func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }
	return l
}

func TestLoggerText(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelInfo, EncodeText)
	l.Info("corpus built", "files", 12, "rate", 0.25, "reason", "parse error")
	want := `ts=2026-01-02T03:04:05.000Z level=info msg="corpus built" files=12 rate=0.25 reason="parse error"` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}

	buf.Reset()
	l.Debug("hidden")
	if buf.Len() != 0 {
		t.Errorf("debug leaked below level: %q", buf.String())
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "level=debug") {
		t.Errorf("debug missing: %q", buf.String())
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelInfo, EncodeJSON).With("component", "clexp")
	l.Warn("synthesis shortfall", "got", 5, "want", 10)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v: %q", err, buf.String())
	}
	if rec["level"] != "warn" || rec["msg"] != "synthesis shortfall" ||
		rec["component"] != "clexp" || rec["got"] != float64(5) {
		t.Errorf("record = %v", rec)
	}
}

func TestLoggerLogf(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelInfo, EncodeText)
	l.Logf("synthesizing %d kernels...", 300)
	if !strings.Contains(buf.String(), `msg="synthesizing 300 kernels..."`) {
		t.Errorf("Logf output: %q", buf.String())
	}
}

// TestLoggerConcurrent writes from 32 goroutines through a parent and a
// With-child and verifies every line arrives intact (no interleaving).
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, EncodeText)
	child := l.With("worker", "w1")
	const goroutines = 32
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		lg := l
		if g%2 == 1 {
			lg = child
		}
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lg.Info("tick", "i", i)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != goroutines*perG {
		t.Fatalf("lines = %d, want %d", len(lines), goroutines*perG)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("mangled line: %q", line)
		}
	}
}

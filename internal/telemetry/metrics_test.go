package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one counter, gauge, and histogram from
// 32 goroutines and checks the final values are exact: updates must be
// atomic and get-or-create must always return the same instance.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 32
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c_total", "").Inc()
				r.Gauge("g", "").Add(0.5)
				r.Histogram("h_seconds", "", []float64{0.5}).Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("g", "").Value(); math.Abs(got-goroutines*perG*0.5) > 1e-9 {
		t.Errorf("gauge = %f, want %f", got, float64(goroutines*perG)*0.5)
	}
	h := r.Histogram("h_seconds", "", nil)
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if math.Abs(h.Sum()-goroutines*perG*0.25) > 1e-6 {
		t.Errorf("histogram sum = %f", h.Sum())
	}
	snap := h.snapshot()
	if snap.Buckets[0] != goroutines*perG || snap.Buckets[1] != goroutines*perG {
		t.Errorf("cumulative buckets = %v", snap.Buckets)
	}
}

// TestSnapshotDuringWrites takes snapshots concurrently with writers and
// checks every observed counter value is sane and monotonically
// nondecreasing across snapshots.
func TestSnapshotDuringWrites(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perG = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("w_total", "").Inc()
				r.Histogram("w_seconds", "", nil).Observe(0.01)
			}
		}()
	}
	var prev int64 = -1
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			v := s.Counters["w_total"]
			if v < prev {
				t.Errorf("counter went backwards: %d -> %d", prev, v)
				return
			}
			if v > writers*perG {
				t.Errorf("counter overshot: %d", v)
				return
			}
			prev = v
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	if got := r.Snapshot().Counters["w_total"]; got != writers*perG {
		t.Errorf("final = %d, want %d", got, writers*perG)
	}
}

// TestPrometheusGolden locks the text exposition format against a golden
// file: families sorted, HELP/TYPE headers, labeled series, cumulative
// histogram buckets with le labels and _sum/_count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("corpus_files_total", "Content files entering the rejection filter.").Add(10)
	r.Counter(Label("samples_rejected_total", "reason", "parse error"),
		"Samples rejected by the filter.").Add(3)
	r.Counter(Label("samples_rejected_total", "reason", "no kernel function"), "").Add(2)
	r.Gauge("train_loss", "Mean cross-entropy per character.").Set(1.25)
	h := r.Histogram(Label("stage_seconds", "stage", "corpus.build"),
		"Stage wall time in seconds.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.Gauge("b", "").Set(2.5)
	r.Histogram("c_seconds", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if snap.Counters["a_total"] != 7 || snap.Gauges["b"] != 2.5 {
		t.Errorf("snapshot = %+v", snap)
	}
	hs := snap.Histograms["c_seconds"]
	if hs.Count != 1 || hs.Mean() != 0.5 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_total", "reason", `a "b"`); got != `x_total{reason="a \"b\""}` {
		t.Errorf("Label = %s", got)
	}
	if got := Label("x_total"); got != "x_total" {
		t.Errorf("Label no pairs = %s", got)
	}
	if familyName(`x{a="b"}`) != "x" || labelPart(`x{a="b"}`) != `a="b"` {
		t.Error("family/label split broken")
	}
}

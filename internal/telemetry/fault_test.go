package telemetry

import (
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		spec string
		want map[string]time.Duration
	}{
		{"", nil},
		{"core.synthesize=2s", map[string]time.Duration{"core.synthesize": 2 * time.Second}},
		{"a=1s, b=250ms", map[string]time.Duration{"a": time.Second, "b": 250 * time.Millisecond}},
		{"bad", nil},
		{"x=", nil},
		{"=1s", nil},
		{"x=-5s", nil},
		{"x=nope,y=1s", map[string]time.Duration{"y": time.Second}},
	}
	for _, c := range cases {
		got := parseFaultSpec(c.spec)
		if len(got) != len(c.want) {
			t.Errorf("parseFaultSpec(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for k, v := range c.want {
			if got[k] != v {
				t.Errorf("parseFaultSpec(%q)[%s] = %v, want %v", c.spec, k, got[k], v)
			}
		}
	}
}

package telemetry

import (
	"io"
	"sync"
	"testing"
)

// TestHistogramConcurrent hammers one histogram with concurrent Observe
// calls while snapshot and Prometheus exposition run — under -race this
// guards the lock-free bucket/sum updates; afterwards the totals must be
// exact (no lost increments).
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("stage_seconds_test", "t", DurationBuckets)
	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%10) / 10)
			}
		}(g)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Snapshot()
				reg.WritePrometheus(io.Discard)
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot().Histograms["stage_seconds_test"]
	if snap.Count != writers*perG {
		t.Fatalf("count = %d, want %d", snap.Count, writers*perG)
	}
	if got := snap.Buckets[len(snap.Buckets)-1]; got != writers*perG {
		t.Fatalf("+Inf bucket = %d, want %d", got, writers*perG)
	}
	// Each block of 10 observations sums to 0.0+0.1+...+0.9 = 4.5.
	want := float64(writers*perG) / 10 * 4.5
	if diff := snap.Sum - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum = %v, want %v", snap.Sum, want)
	}
}

package telemetry

import (
	"runtime"
	"sync/atomic"
)

// ResourceSample is a point-in-time snapshot of process-wide resource
// counters: CPU time consumed, cumulative heap allocations, total GC
// pause time, completed GC cycles, and live goroutines. Spans capture one
// sample at Start and one at End and attach the deltas as stage attrs —
// see the perf-sampling conventions in DESIGN.md for what a delta does
// (and does not) mean for concurrent stages.
//
// The sampler itself lives in internal/perf (it needs getrusage and
// runtime.ReadMemStats); telemetry only defines the hook so the tracer
// stays dependency-free.
type ResourceSample struct {
	// CPUSeconds is process CPU time (user + system) since process start.
	CPUSeconds float64
	// AllocBytes is cumulative heap allocation (runtime.MemStats.TotalAlloc).
	AllocBytes uint64
	// GCPauseSeconds is total stop-the-world pause time since start.
	GCPauseSeconds float64
	// GCCycles is the number of completed GC cycles.
	GCCycles uint32
	// Goroutines is the current goroutine count.
	Goroutines int
}

type samplerFunc func() ResourceSample

var (
	resourceSampler atomic.Pointer[samplerFunc]
	perfSampling    atomic.Bool
)

// SetResourceSampler installs the process resource sampler (nil removes
// it). Called once from internal/perf's init — telemetry cannot import
// perf, which depends on telemetry for metrics and the stage tree.
func SetResourceSampler(fn func() ResourceSample) {
	if fn == nil {
		resourceSampler.Store(nil)
		return
	}
	f := samplerFunc(fn)
	resourceSampler.Store(&f)
}

// EnablePerfSampling switches per-stage resource accounting on or off.
// Off (the default) is overhead-free: spans never call the sampler and
// carry no perf attrs. Binaries enable it via the shared -perf flag.
func EnablePerfSampling(on bool) { perfSampling.Store(on) }

// PerfSamplingEnabled reports whether spans are capturing resource deltas.
func PerfSamplingEnabled() bool {
	return perfSampling.Load() && resourceSampler.Load() != nil
}

// sampleResources takes one resource sample when sampling is enabled.
func sampleResources() (ResourceSample, bool) {
	if !perfSampling.Load() {
		return ResourceSample{}, false
	}
	fp := resourceSampler.Load()
	if fp == nil {
		return ResourceSample{}, false
	}
	return (*fp)(), true
}

// SampleResources exposes one resource sample to instrumentation outside
// the span machinery (the nn training loop stamps per-epoch CPU deltas
// into its trained journal events). Returns ok=false when -perf is off or
// no sampler is installed; callers must treat the sample as optional.
func SampleResources() (ResourceSample, bool) { return sampleResources() }

// EnvInfo stamps a measurement with the machine and toolchain that
// produced it. Every BENCH_*.json snapshot, RunReport, and clperf history
// record carries one — cross-machine comparison of wall times is
// meaningless without it (PR 2 recorded ~1x pool speedups that were
// simply a GOMAXPROCS=1 container).
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// Env returns the current process's environment stamp.
func Env() EnvInfo {
	return EnvInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

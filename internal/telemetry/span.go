package telemetry

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records spans into a per-run stage tree and feeds their
// durations into a registry histogram (`stage_seconds{stage="..."}`).
//
// Three parenting modes compose:
//
//   - Explicit mode: parent.Child(name) parents the new span under parent
//     without touching the tracer's implicit stack — the correct mode for
//     spans opened on worker goroutines (the pipeline's parallel stages),
//     where the implicit stack would misattribute them.
//   - Context mode: StartSpan(ctx, name) parents the new span under the
//     span carried by ctx, for code that already threads contexts. A
//     ctx-parented span is explicit: it is goroutine-safe and leaves the
//     implicit stack alone.
//   - Implicit mode: Start(name) parents under the tracer's current open
//     span, giving correctly nested trees on the coordinating goroutine
//     without changing signatures.
//
// All tracer state is mutex-protected, so concurrent use is race-free in
// every mode; only implicit Start calls from non-root goroutines nest
// unpredictably (use Child there instead).
type Tracer struct {
	mu    sync.Mutex
	reg   *Registry
	now   func() time.Time
	roots []*Span
	cur   *Span
}

// NewTracer builds a tracer recording durations into reg (nil means no
// histogram recording, tree only).
func NewTracer(reg *Registry) *Tracer {
	return &Tracer{reg: reg, now: time.Now}
}

// SetClock replaces the tracer's time source (for tests).
func (t *Tracer) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

var defaultTracer = NewTracer(defaultRegistry)

// DefaultTracer returns the process-global tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// Span is one timed stage of a run.
type Span struct {
	tracer   *Tracer
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	implicit bool // on the tracer's implicit stack (Start), vs explicit (Child/ctx)
	parent   *Span
	children []*Span
	attrs    []kv
	// res0 is the resource sample captured at Start when -perf sampling is
	// enabled (nil otherwise). Written once before the span is shared, so
	// End may read it without the tracer lock.
	res0 *ResourceSample
}

type ctxKey struct{}

// StartSpan opens a span named name, parented under the span in ctx (or
// the tracer's current span when ctx carries none), and returns a
// derived context carrying it. A ctx-parented span is explicit — safe to
// open from any goroutine.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	var s *Span
	if p, ok := ctx.Value(ctxKey{}).(*Span); ok {
		s = t.start(name, p, false)
	} else {
		s = t.start(name, nil, true)
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Start opens a span under the tracer's current open span (implicit mode;
// intended for the coordinating goroutine).
func (t *Tracer) Start(name string) *Span {
	return t.start(name, nil, true)
}

// Child opens a span explicitly parented under s. It never touches the
// tracer's implicit stack, so it is the correct way to open spans from
// worker goroutines: concurrent children of the same parent attach as
// siblings instead of flattening or nesting under each other.
func (s *Span) Child(name string) *Span {
	return s.tracer.start(name, s, false)
}

func (t *Tracer) start(name string, parent *Span, implicit bool) *Span {
	// Resource sampling happens outside the lock: ReadMemStats is not free
	// and must not serialize unrelated spans.
	var res0 *ResourceSample
	if r, ok := sampleResources(); ok {
		res0 = &r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if implicit && parent == nil {
		parent = t.cur
	}
	s := &Span{tracer: t, name: name, start: t.now(), implicit: implicit, parent: parent, res0: res0}
	if parent != nil {
		parent.children = append(parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	if implicit {
		t.cur = s
	}
	return s
}

// StartSpan opens a span on the default tracer with context parenting.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return defaultTracer.StartSpan(ctx, name)
}

// Start opens a span on the default tracer under its current open span.
func Start(name string) *Span { return defaultTracer.Start(name) }

// Name returns the span's stage name.
func (s *Span) Name() string { return s.name }

// Duration returns the recorded duration (zero until End).
func (s *Span) Duration() time.Duration {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.dur
}

// SetAttr attaches a key=value annotation shown in the rendered tree and
// the RunReport (e.g. kernels synthesized in this stage).
func (s *Span) SetAttr(key string, value any) *Span {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	s.setAttrLocked(key, value)
	return s
}

// setAttrLocked upserts one attr; the caller holds the tracer lock.
func (s *Span) setAttrLocked(key string, value any) {
	for i := range s.attrs {
		if s.attrs[i].k == key {
			s.attrs[i].v = value
			return
		}
	}
	s.attrs = append(s.attrs, kv{key, value})
}

// End closes the span, records its duration into the tracer's registry,
// and pops it from the implicit stack. End is idempotent. When -perf
// sampling was enabled at Start, End attaches the stage's resource deltas
// (cpu_s, alloc_bytes, gc_pause_s, gc_cycles, goroutines) as attrs — they
// surface in /stages, the RunReport, and the perf_stage_* metrics.
func (s *Span) End() {
	// Sample before taking the lock, mirroring start.
	var res1 ResourceSample
	haveRes := false
	if s.res0 != nil {
		res1, haveRes = sampleResources()
	}
	t := s.tracer
	t.mu.Lock()
	if s.ended {
		t.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = t.now().Sub(s.start)
	var resCPU, resAlloc, resGCPause float64
	if haveRes {
		resCPU = clampNonNeg(res1.CPUSeconds - s.res0.CPUSeconds)
		resAlloc = float64(res1.AllocBytes - s.res0.AllocBytes)
		resGCPause = clampNonNeg(res1.GCPauseSeconds - s.res0.GCPauseSeconds)
		s.setAttrLocked("cpu_s", roundMicro(resCPU))
		s.setAttrLocked("alloc_bytes", int64(res1.AllocBytes-s.res0.AllocBytes))
		s.setAttrLocked("gc_pause_s", roundMicro(resGCPause))
		s.setAttrLocked("gc_cycles", int(res1.GCCycles-s.res0.GCCycles))
		s.setAttrLocked("goroutines", res1.Goroutines)
	}
	// Pop this span (and any unclosed descendants) off the implicit stack.
	// Explicit spans (Child/ctx-parented) were never pushed, so ending them
	// from a worker goroutine cannot disturb the coordinator's stack.
	if s.implicit {
		for c := t.cur; c != nil; c = c.parent {
			if c == s {
				t.cur = s.parent
				break
			}
		}
	}
	reg := t.reg
	dur := s.dur
	name := s.name
	t.mu.Unlock()
	if reg != nil {
		reg.Histogram(Label("stage_seconds", "stage", name),
			"Stage wall time in seconds.", DurationBuckets).Observe(dur.Seconds())
		if haveRes {
			reg.Gauge(Label("perf_stage_cpu_seconds", "stage", name),
				"CPU time (user+system) attributed to the stage, in seconds.").Add(resCPU)
			reg.Gauge(Label("perf_stage_alloc_bytes", "stage", name),
				"Heap bytes allocated while the stage was open.").Add(resAlloc)
			reg.Gauge(Label("perf_stage_gc_pause_seconds", "stage", name),
				"GC stop-the-world pause time while the stage was open, in seconds.").Add(resGCPause)
		}
	}
	if Tapped() {
		Tap("span", fmt.Sprintf("%s %s", name, formatSeconds(dur.Seconds())))
	}
}

// clampNonNeg floors small negative deltas (clock/rusage granularity) at 0.
func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// roundMicro rounds seconds to microsecond resolution so attrs stay tidy.
func roundMicro(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// StageNode is the exported form of a span for the RunReport.
type StageNode struct {
	Name     string         `json:"name"`
	Seconds  float64        `json:"seconds"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []StageNode    `json:"children,omitempty"`
}

// Stages exports the tracer's root spans as a forest of StageNodes.
// Unfinished spans report the time elapsed so far.
func (t *Tracer) Stages() []StageNode {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageNode, 0, len(t.roots))
	for _, r := range t.roots {
		out = append(out, t.export(r))
	}
	return out
}

func (t *Tracer) export(s *Span) StageNode {
	n := StageNode{Name: s.name, Seconds: s.dur.Seconds()}
	if !s.ended {
		n.Seconds = t.now().Sub(s.start).Seconds()
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.k] = jsonValue(a.v)
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, t.export(c))
	}
	return n
}

// Reset drops all recorded spans. Intended for tests and between runs.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roots = nil
	t.cur = nil
}

// WriteTree renders the stage tree as an indented run summary:
//
//	world.build                      12.804s
//	  corpus.build                    1.022s  files=1200
func (t *Tracer) WriteTree(w io.Writer) {
	for _, n := range t.Stages() {
		writeNode(w, n, 0)
	}
}

// TreeString renders the stage tree to a string.
func (t *Tracer) TreeString() string {
	var b strings.Builder
	t.WriteTree(&b)
	return b.String()
}

func writeNode(w io.Writer, n StageNode, depth int) {
	pad := strings.Repeat("  ", depth)
	label := pad + n.Name
	fmt.Fprintf(w, "%-40s %10s", label, formatSeconds(n.Seconds))
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s=%v", k, n.Attrs[k])
		}
	}
	fmt.Fprintln(w)
	for _, c := range n.Children {
		writeNode(w, c, depth+1)
	}
}

func formatSeconds(s float64) string {
	switch {
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	case s < 60:
		return fmt.Sprintf("%.3fs", s)
	default:
		return time.Duration(s * float64(time.Second)).Round(time.Second).String()
	}
}

// Package telemetry is the pipeline-wide observability layer: a leveled
// structured logger, a process-global metrics registry (counters, gauges,
// histograms with Prometheus text exposition), lightweight span tracing
// that accumulates a per-run stage tree, an opt-in HTTP server exposing
// /metrics, /vars, and net/http/pprof, and a machine-readable RunReport.
//
// The package is stdlib-only and imported by every pipeline layer (corpus
// filtering, model training, sampling, the host driver, and the
// experimental harness), so a full run's timings, counters, and failure
// modes are observable in one place.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a logging severity.
type Level int32

// Severities, ordered. A logger emits records at or above its level.
const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l == LevelInfo:
		return "info"
	case l == LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// Encoding selects the logger's output format.
type Encoding int

// Encodings.
const (
	EncodeText Encoding = iota // ts=... level=... msg=... k=v
	EncodeJSON                 // one JSON object per line
)

// Logger is a goroutine-safe leveled structured logger. Records are
// key=value pairs rendered as text or JSON to a pluggable sink.
type Logger struct {
	mu    *sync.Mutex // shared with children so writes stay line-atomic
	w     io.Writer
	level *atomic.Int32 // shared with children
	enc   Encoding
	with  []kv
	now   func() time.Time
}

type kv struct {
	k string
	v any
}

// NewLogger builds a logger writing to w at the given level and encoding.
func NewLogger(w io.Writer, level Level, enc Encoding) *Logger {
	l := &Logger{mu: &sync.Mutex{}, w: w, enc: enc, now: time.Now, level: &atomic.Int32{}}
	l.level.Store(int32(level))
	return l
}

var (
	defaultLoggerMu sync.Mutex
	defaultLogger   = NewLogger(os.Stderr, LevelInfo, EncodeText)
)

// DefaultLogger returns the process-wide logger.
func DefaultLogger() *Logger {
	defaultLoggerMu.Lock()
	defer defaultLoggerMu.Unlock()
	return defaultLogger
}

// SetDefaultLogger replaces the process-wide logger.
func SetDefaultLogger(l *Logger) {
	defaultLoggerMu.Lock()
	defer defaultLoggerMu.Unlock()
	defaultLogger = l
}

// SetLevel changes the logger's minimum severity.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Level returns the logger's minimum severity.
func (l *Logger) Level() Level { return Level(l.level.Load()) }

// Enabled reports whether records at the given level are emitted.
func (l *Logger) Enabled(level Level) bool { return level >= l.Level() }

// With returns a child logger whose records carry the given key=value
// pairs in addition to per-record ones. The child shares the parent's
// sink, mutex, and level.
func (l *Logger) With(pairs ...any) *Logger {
	child := &Logger{mu: l.mu, w: l.w, enc: l.enc, now: l.now, level: l.level,
		with: append([]kv(nil), l.with...)}
	child.with = append(child.with, collectPairs(pairs)...)
	return child
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, pairs ...any) { l.log(LevelDebug, msg, pairs) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, pairs ...any) { l.log(LevelInfo, msg, pairs) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, pairs ...any) { l.log(LevelWarn, msg, pairs) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, pairs ...any) { l.log(LevelError, msg, pairs) }

// Logf logs a printf-style message at LevelInfo. It is the compatibility
// shim for progress hooks like experiments.Config.Log.
func (l *Logger) Logf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

// Package-level helpers on the default logger.

// Debug logs to the default logger.
func Debug(msg string, pairs ...any) { DefaultLogger().Debug(msg, pairs...) }

// Info logs to the default logger.
func Info(msg string, pairs ...any) { DefaultLogger().Info(msg, pairs...) }

// Warn logs to the default logger.
func Warn(msg string, pairs ...any) { DefaultLogger().Warn(msg, pairs...) }

// Error logs to the default logger.
func Error(msg string, pairs ...any) { DefaultLogger().Error(msg, pairs...) }

func collectPairs(pairs []any) []kv {
	var out []kv
	for i := 0; i+1 < len(pairs); i += 2 {
		k, ok := pairs[i].(string)
		if !ok {
			k = fmt.Sprint(pairs[i])
		}
		out = append(out, kv{k, pairs[i+1]})
	}
	if len(pairs)%2 == 1 {
		out = append(out, kv{"EXTRA", pairs[len(pairs)-1]})
	}
	return out
}

func (l *Logger) log(level Level, msg string, pairs []any) {
	if !l.Enabled(level) {
		return
	}
	fields := append(append([]kv(nil), l.with...), collectPairs(pairs)...)
	var line []byte
	switch l.enc {
	case EncodeJSON:
		line = encodeJSONRecord(l.now(), level, msg, fields)
	default:
		line = encodeTextRecord(l.now(), level, msg, fields)
	}
	if Tapped() {
		Tap("log", strings.TrimSuffix(string(line), "\n"))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(line)
}

func encodeTextRecord(ts time.Time, level Level, msg string, fields []kv) []byte {
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(ts.UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(msg))
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.k)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(formatValue(f.v)))
	}
	b.WriteByte('\n')
	return []byte(b.String())
}

func encodeJSONRecord(ts time.Time, level Level, msg string, fields []kv) []byte {
	rec := map[string]any{
		"ts":    ts.UTC().Format(time.RFC3339Nano),
		"level": level.String(),
		"msg":   msg,
	}
	for _, f := range fields {
		rec[f.k] = jsonValue(f.v)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		line = []byte(fmt.Sprintf(`{"level":"error","msg":"telemetry: marshal: %v"}`, err))
	}
	return append(line, '\n')
}

func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case time.Duration:
		return x.String()
	case error:
		return x.Error()
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

func jsonValue(v any) any {
	switch x := v.(type) {
	case time.Duration:
		return x.String()
	case error:
		return x.Error()
	default:
		return v
	}
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewServeMux builds the observability mux for a registry:
//
//	/metrics           Prometheus text exposition
//	/vars              JSON snapshot of every metric (expvar-style)
//	/stages            the live stage tree, as text
//	/debug/pprof/*     net/http/pprof profiles
func NewServeMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/stages", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if tracer != nil {
			tracer.WriteTree(w)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	Addr string // actual listen address (resolves ":0" ports)
	srv  *http.Server
	ln   net.Listener
}

// Serve starts the observability server on addr (e.g. ":9090"). It binds
// synchronously — a bad address fails here, not in the background — and
// then serves until Close.
func Serve(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: NewServeMux(reg, tracer), ReadHeaderTimeout: 10 * time.Second},
		ln:   ln,
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be >= 0; negative deltas are
// ignored to preserve monotonicity).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the metric name (possibly with {labels}).
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous float64 metric.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increases the gauge by delta (CAS loop; safe under concurrency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the metric name (possibly with {labels}).
func (g *Gauge) Name() string { return g.name }

// DurationBuckets are the default histogram bucket upper bounds, in
// seconds, tuned for pipeline stage timings (sub-millisecond kernel runs
// up to multi-minute training epochs).
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// Histogram is a fixed-bucket histogram with atomic updates. Bucket
// counts are cumulative on export (Prometheus `le` convention).
type Histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending; +Inf implicit
	counts     []atomic.Int64
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Name returns the metric name (possibly with {labels}).
func (h *Histogram) Name() string { return h.name }

// HistogramSnapshot is a consistent-enough view of a histogram for
// export: cumulative bucket counts keyed by upper bound.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // cumulative, len(Bounds)+1 (last = +Inf)
}

// Mean returns Sum/Count, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.counts)),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i] = cum
	}
	// Count/Sum read last so they are at least as fresh as the buckets;
	// exposition tolerates small skew under concurrent writes.
	s.Count = h.count.Load()
	s.Sum = h.Sum()
	return s
}

// Registry is a process-global collection of named metrics. Metric
// constructors are get-or-create, so instrumented packages can call
// Registry.Counter(...) on every hot-path hit; lookups take a read lock
// and updates are lock-free atomics.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// Label appends Prometheus-style labels to a metric name:
// Label("x_total", "reason", "parse error") == `x_total{reason="parse error"}`.
// Pairs are key, value, key, value, ...
func Label(name string, pairs ...string) string {
	if len(pairs) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name, help: help}
		r.counters[name] = c
		r.setHelp(name, help)
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name, help: help}
		r.gauges[name] = g
		r.setHelp(name, help)
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (nil means DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{
			name: name, help: help,
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.histograms[name] = h
		r.setHelp(name, help)
	}
	return h
}

// setHelp records family help text (caller holds the write lock). The
// first help string for a family wins.
func (r *Registry) setHelp(name, help string) {
	fam := familyName(name)
	if help != "" && r.help[fam] == "" {
		r.help[fam] = help
	}
}

// familyName strips a {label} suffix: `a{b="c"}` -> `a`.
func familyName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelPart returns the label body of a name, without braces: `a{b="c"}`
// -> `b="c"`, or "" when unlabeled.
func labelPart(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// Snapshot is a point-in-time view of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures all metric values. Counters and gauges are read
// atomically; histograms may show small bucket/count skew if observed
// concurrently with writes.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// Reset drops every metric. Intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.histograms = map[string]*Histogram{}
	r.help = map[string]string{}
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one family per metric name, labeled series
// grouped under their family with # HELP / # TYPE headers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	type series struct {
		name  string
		c     *Counter
		g     *Gauge
		h     *Histogram
		mtype string
	}
	families := map[string][]series{}
	var famNames []string
	addFam := func(name string, s series) {
		fam := familyName(name)
		if _, ok := families[fam]; !ok {
			famNames = append(famNames, fam)
		}
		families[fam] = append(families[fam], s)
	}
	for n, c := range r.counters {
		addFam(n, series{name: n, c: c, mtype: "counter"})
	}
	for n, g := range r.gauges {
		addFam(n, series{name: n, g: g, mtype: "gauge"})
	}
	for n, h := range r.histograms {
		addFam(n, series{name: n, h: h, mtype: "histogram"})
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	sort.Strings(famNames)
	for _, fam := range famNames {
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
		if h := help[fam]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, ss[0].mtype); err != nil {
			return err
		}
		for _, s := range ss {
			if err := writeSeries(w, s.name, s.c, s.g, s.h); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, c *Counter, g *Gauge, h *Histogram) error {
	switch {
	case c != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
		return err
	case g != nil:
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
		return err
	default:
		snap := h.snapshot()
		fam := familyName(name)
		labels := labelPart(name)
		for i, bound := range snap.Bounds {
			if err := writeBucket(w, fam, labels, formatFloat(bound), snap.Buckets[i]); err != nil {
				return err
			}
		}
		if err := writeBucket(w, fam, labels, "+Inf", snap.Buckets[len(snap.Buckets)-1]); err != nil {
			return err
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, suffix, formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, snap.Count)
		return err
	}
}

func writeBucket(w io.Writer, fam, labels, le string, cum int64) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", fam, labels, sep, le, cum)
	return err
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

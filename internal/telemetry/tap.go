package telemetry

import "sync/atomic"

// The event tap is the flight recorder's feed: when installed, every log
// line, span end, and journal event is forwarded as a (kind, msg) pair so
// the watchdog's ring buffer holds the run's last moments. No tap (the
// default) costs one atomic load at each call site; producers of
// expensive messages guard with Tapped() before formatting.

// TapFunc receives one telemetry event. It must be fast and must not
// call back into the logger or tracer at the risk of recursion.
type TapFunc func(kind, msg string)

var tapFn atomic.Pointer[TapFunc]

// SetTap installs the process-wide event tap (nil removes it). Installed
// by the internal/perf flight recorder; last writer wins.
func SetTap(fn TapFunc) {
	if fn == nil {
		tapFn.Store(nil)
		return
	}
	tapFn.Store(&fn)
}

// Tapped reports whether an event tap is installed. Call sites use it to
// skip message formatting when nobody is recording.
func Tapped() bool { return tapFn.Load() != nil }

// Tap forwards one event to the installed tap, if any.
func Tap(kind, msg string) {
	if f := tapFn.Load(); f != nil {
		(*f)(kind, msg)
	}
}

package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic time source for span tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestSpanTreeFakeClock builds a nested run over a fake clock and checks
// the exported stage tree: nesting, durations, and attrs.
func TestSpanTreeFakeClock(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	clk := newFakeClock()
	tr.SetClock(clk.now)

	root := tr.Start("world.build")
	clk.advance(100 * time.Millisecond)
	child := tr.Start("corpus.build")
	child.SetAttr("files", 42)
	clk.advance(250 * time.Millisecond)
	child.End()
	grand := tr.Start("core.synthesize")
	clk.advance(2 * time.Second)
	grand.End()
	clk.advance(50 * time.Millisecond)
	root.End()

	stages := tr.Stages()
	if len(stages) != 1 {
		t.Fatalf("roots = %d, want 1", len(stages))
	}
	w := stages[0]
	if w.Name != "world.build" || w.Seconds != 2.4 {
		t.Errorf("root = %s %.3fs, want world.build 2.400s", w.Name, w.Seconds)
	}
	if len(w.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(w.Children))
	}
	if w.Children[0].Name != "corpus.build" || w.Children[0].Seconds != 0.25 {
		t.Errorf("child 0 = %+v", w.Children[0])
	}
	if w.Children[0].Attrs["files"] != 42 {
		t.Errorf("attrs = %v", w.Children[0].Attrs)
	}
	if w.Children[1].Name != "core.synthesize" || w.Children[1].Seconds != 2 {
		t.Errorf("child 1 = %+v", w.Children[1])
	}

	// Durations land in the stage_seconds histograms.
	h := reg.Histogram(Label("stage_seconds", "stage", "corpus.build"), "", nil)
	if h.Count() != 1 || h.Sum() != 0.25 {
		t.Errorf("histogram count=%d sum=%f", h.Count(), h.Sum())
	}

	tree := tr.TreeString()
	if !strings.Contains(tree, "world.build") || !strings.Contains(tree, "  corpus.build") {
		t.Errorf("tree render:\n%s", tree)
	}
	if !strings.Contains(tree, "files=42") {
		t.Errorf("tree missing attrs:\n%s", tree)
	}
}

// TestSpanContextParenting checks the ctx-based mode nests spans across
// explicit contexts and that End is idempotent.
func TestSpanContextParenting(t *testing.T) {
	tr := NewTracer(nil)
	clk := newFakeClock()
	tr.SetClock(clk.now)

	ctx, root := tr.StartSpan(context.Background(), "run")
	_, child := tr.StartSpan(ctx, "phase")
	clk.advance(time.Second)
	child.End()
	child.End() // idempotent
	root.End()

	stages := tr.Stages()
	if len(stages) != 1 || len(stages[0].Children) != 1 {
		t.Fatalf("stages = %+v", stages)
	}
	if stages[0].Children[0].Seconds != 1 {
		t.Errorf("child seconds = %f", stages[0].Children[0].Seconds)
	}

	tr.Reset()
	if len(tr.Stages()) != 0 {
		t.Error("reset did not clear roots")
	}
}

// TestSpanChildParenting checks that Child spans opened concurrently on
// worker goroutines all attach as siblings under their explicit parent —
// never nested under each other and never flattened to roots — and that
// the coordinator's implicit stack is untouched by their lifecycle.
func TestSpanChildParenting(t *testing.T) {
	tr := NewTracer(nil)
	clk := newFakeClock()
	tr.SetClock(clk.now)

	root := tr.Start("phase")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				root.Child("item").End()
			}
		}()
	}
	wg.Wait()

	// The implicit stack still points at root: a sibling stage started now
	// nests under root, not under some worker's span.
	sib := tr.Start("next")
	sib.End()
	root.End()

	stages := tr.Stages()
	if len(stages) != 1 {
		t.Fatalf("roots = %d, want 1 (children leaked to root?)", len(stages))
	}
	if got := len(stages[0].Children); got != 8*25+1 {
		t.Fatalf("children of root = %d, want %d", got, 8*25+1)
	}
	for _, c := range stages[0].Children {
		if len(c.Children) != 0 {
			t.Fatalf("concurrent children nested under each other: %+v", c)
		}
	}
}

// TestSpanChildEndOrder checks that ending an explicit child after its
// implicit parent has ended does not corrupt the stack.
func TestSpanChildEndOrder(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Start("a")
	child := root.Child("b")
	root.End()
	child.End() // must not pop anything
	after := tr.Start("c")
	after.End()
	stages := tr.Stages()
	if len(stages) != 2 || stages[0].Name != "a" || stages[1].Name != "c" {
		t.Fatalf("stages = %+v", stages)
	}
}

// TestSpanConcurrent opens/closes spans from many goroutines; the tree
// may be flat but must be race-free and complete.
func TestSpanConcurrent(t *testing.T) {
	tr := NewTracer(NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Start("stage").End()
			}
		}()
	}
	wg.Wait()
	total := 0
	var count func(ns []StageNode)
	count = func(ns []StageNode) {
		for _, n := range ns {
			total++
			count(n.Children)
		}
	}
	count(tr.Stages())
	if total != 16*100 {
		t.Errorf("spans recorded = %d, want %d", total, 16*100)
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// RunReport is the machine-readable summary of one pipeline run: the
// per-stage duration tree plus every counter, gauge, and histogram. A
// completed clexp run writes one of these to the -report path, giving a
// JSON reproduction of the paper's Table 1-style corpus statistics with
// per-stage timings alongside.
type RunReport struct {
	Component string    `json:"component"`
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
	Seconds   float64   `json:"seconds"`
	// Env stamps the machine and toolchain that produced the run, making
	// reports (and the BENCH_*.json snapshots built from them) comparable
	// across machines. clperf record carries it into the perf history.
	Env EnvInfo `json:"env"`

	Stages     []StageNode                  `json:"stages,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// BuildReport assembles a RunReport from a registry and tracer.
func BuildReport(component string, start time.Time, reg *Registry, tracer *Tracer) *RunReport {
	snap := reg.Snapshot()
	end := time.Now()
	return &RunReport{
		Component:  component,
		Start:      start,
		End:        end,
		Seconds:    end.Sub(start).Seconds(),
		Env:        Env(),
		Stages:     tracer.Stages(),
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
	}
}

// WriteFile writes the report as indented JSON to path.
func (r *RunReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("telemetry: write report: %w", err)
	}
	return nil
}

// WriteDefaultReport writes a RunReport of the default registry and
// tracer — the hook bench_test.go uses to persist a stage-duration
// baseline (BENCH_telemetry.json) for future perf PRs.
func WriteDefaultReport(component, path string, start time.Time) error {
	return BuildReport(component, start, Default(), DefaultTracer()).WriteFile(path)
}

package telemetry

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedSampler returns base on its first call and base+delta afterwards,
// so a start/end span pair observes a known resource delta.
func scriptedSampler(base, delta ResourceSample) func() ResourceSample {
	var calls atomic.Int64
	return func() ResourceSample {
		if calls.Add(1) == 1 {
			return base
		}
		return ResourceSample{
			CPUSeconds:     base.CPUSeconds + delta.CPUSeconds,
			AllocBytes:     base.AllocBytes + delta.AllocBytes,
			GCPauseSeconds: base.GCPauseSeconds + delta.GCPauseSeconds,
			GCCycles:       base.GCCycles + delta.GCCycles,
			Goroutines:     delta.Goroutines,
		}
	}
}

func withFakeSampler(t *testing.T, fn func() ResourceSample) {
	t.Helper()
	SetResourceSampler(fn)
	EnablePerfSampling(true)
	t.Cleanup(func() {
		EnablePerfSampling(false)
		SetResourceSampler(nil)
	})
}

// TestSpanPerfAttrs checks that with sampling enabled a span's End attaches
// the resource deltas as attrs and feeds the perf_stage_* gauges.
func TestSpanPerfAttrs(t *testing.T) {
	withFakeSampler(t, scriptedSampler(
		ResourceSample{CPUSeconds: 10, AllocBytes: 1 << 20, GCPauseSeconds: 0.25, GCCycles: 3, Goroutines: 4},
		ResourceSample{CPUSeconds: 1.5, AllocBytes: 4096, GCPauseSeconds: 0.125, GCCycles: 2, Goroutines: 7},
	))
	reg := NewRegistry()
	tr := NewTracer(reg)
	clk := newFakeClock()
	tr.SetClock(clk.now)

	s := tr.Start("corpus.build")
	clk.advance(2 * time.Second)
	s.End()

	stages := tr.Stages()
	if len(stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(stages))
	}
	attrs := stages[0].Attrs
	wantAttrs := map[string]any{
		"cpu_s":       1.5,
		"alloc_bytes": int64(4096),
		"gc_pause_s":  0.125,
		"gc_cycles":   2,
		"goroutines":  7,
	}
	for k, want := range wantAttrs {
		if got, ok := attrs[k]; !ok {
			t.Errorf("attr %s missing; attrs=%v", k, attrs)
		} else if got != want {
			t.Errorf("attr %s = %v (%T), want %v (%T)", k, got, got, want, want)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Gauges[`perf_stage_cpu_seconds{stage="corpus.build"}`]; got != 1.5 {
		t.Errorf("perf_stage_cpu_seconds = %v, want 1.5", got)
	}
	if got := snap.Gauges[`perf_stage_alloc_bytes{stage="corpus.build"}`]; got != 4096 {
		t.Errorf("perf_stage_alloc_bytes = %v, want 4096", got)
	}
	if got := snap.Gauges[`perf_stage_gc_pause_seconds{stage="corpus.build"}`]; got != 0.125 {
		t.Errorf("perf_stage_gc_pause_seconds = %v, want 0.125", got)
	}
}

// TestSpanPerfDisabled checks that without -perf no sampler runs and spans
// stay attr-free: the accounting must be overhead-free when off.
func TestSpanPerfDisabled(t *testing.T) {
	calls := 0
	SetResourceSampler(func() ResourceSample { calls++; return ResourceSample{} })
	t.Cleanup(func() { SetResourceSampler(nil) })
	// Sampler installed but sampling NOT enabled.
	tr := NewTracer(NewRegistry())
	s := tr.Start("stage")
	s.End()
	if calls != 0 {
		t.Fatalf("sampler ran %d times with -perf off, want 0", calls)
	}
	if attrs := tr.Stages()[0].Attrs; len(attrs) != 0 {
		t.Fatalf("unexpected attrs with -perf off: %v", attrs)
	}
}

// TestSpanPerfAttrMerge checks that perf deltas merge with user-set attrs
// by upsert: user attrs survive, colliding keys are overwritten once (no
// duplicate keys in the export), and the RunReport carries the union.
func TestSpanPerfAttrMerge(t *testing.T) {
	withFakeSampler(t, scriptedSampler(
		ResourceSample{CPUSeconds: 2},
		ResourceSample{CPUSeconds: 0.5, Goroutines: 3},
	))
	reg := NewRegistry()
	tr := NewTracer(reg)
	clk := newFakeClock()
	tr.SetClock(clk.now)

	s := tr.Start("core.synthesize")
	s.SetAttr("kernels", 42)
	s.SetAttr("cpu_s", 999.0) // stale user value: End must overwrite it
	clk.advance(time.Second)
	s.End()

	rep := BuildReport("test", clk.now().Add(-time.Minute), reg, tr)
	if len(rep.Stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(rep.Stages))
	}
	attrs := rep.Stages[0].Attrs
	if got := attrs["kernels"]; got != 42 {
		t.Errorf("user attr kernels = %v, want 42", got)
	}
	if got := attrs["cpu_s"]; got != 0.5 {
		t.Errorf("cpu_s = %v, want measured 0.5 (user value overwritten)", got)
	}
	if got := attrs["goroutines"]; got != 3 {
		t.Errorf("goroutines = %v, want 3", got)
	}
}

// TestReportEnv checks every RunReport is stamped with the machine env.
func TestReportEnv(t *testing.T) {
	rep := BuildReport("test", time.Now(), NewRegistry(), NewTracer(nil))
	if rep.Env.GoVersion == "" || rep.Env.GOMAXPROCS <= 0 || rep.Env.NumCPU <= 0 {
		t.Fatalf("report env incomplete: %+v", rep.Env)
	}
	if rep.Env != Env() {
		t.Fatalf("report env %+v != current env %+v", rep.Env, Env())
	}
}

// TestSpanPerfConcurrent hammers span start/end from many goroutines with
// sampling enabled — run under -race this guards the lock-free res0
// handoff and the sampler pointer swap.
func TestSpanPerfConcurrent(t *testing.T) {
	withFakeSampler(t, func() ResourceSample {
		return ResourceSample{CPUSeconds: 1, AllocBytes: 1, Goroutines: 1}
	})
	reg := NewRegistry()
	tr := NewTracer(reg)
	root := tr.Start("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := root.Child("worker")
				c.SetAttr("i", i)
				c.End()
			}
		}()
	}
	// Concurrent readers: the exporter paths the HTTP server exercises.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Stages()
				var b strings.Builder
				tr.WriteTree(&b)
				reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	root.End()
	if n := len(tr.Stages()[0].Children); n != 8*200 {
		t.Fatalf("got %d children, want %d", n, 8*200)
	}
}

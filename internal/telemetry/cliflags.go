package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// CLIFlags are the observability flags shared by every binary in this
// repo (clgen, clexp, cldrive): consistent names, consistent semantics.
type CLIFlags struct {
	Verbose     bool   // -v: debug logging
	Quiet       bool   // -quiet: warnings and errors only
	JSONLog     bool   // -log-json: JSON log encoding
	MetricsAddr string // -metrics-addr: serve /metrics, /vars, /debug/pprof
	ReportPath  string // -report: write a RunReport JSON on exit
	JournalPath string // -journal: append a JSONL provenance journal
	// StaticChecks enables the internal/analysis static analyzer in
	// whatever pipeline the binary runs: strict rejection filtering in
	// clgen/clexp, the dynamic-checker pre-screen in cldrive. Pipeline
	// packages read it from their own configs; it lives here so every
	// binary spells the flag the same way.
	StaticChecks bool // -static-checks
	// Perf enables per-stage resource accounting: every span captures CPU
	// time, heap-allocation, GC-pause, and goroutine deltas (internal/perf
	// backend). Off by default — and overhead-free when off.
	Perf bool // -perf
	// StallTimeout arms the stall watchdog: if the pipeline makes no
	// progress for this long while work is in flight, goroutine stacks,
	// the flight-recorder ring, and the in-flight artifact IDs are dumped
	// to StallDump. 0 (the default) disables the watchdog.
	StallTimeout time.Duration // -stall-timeout
	// StallDump is the watchdog dump path ("" = <component>.stall.txt).
	StallDump string // -stall-dump
	// PerfHistory appends a machine-stamped run profile (per-stage wall,
	// CPU, and allocation totals) to this JSONL file on exit — the history
	// clperf record/history/diff operate on.
	PerfHistory string // -perf-history
	// CacheDir enables internal/cache's persistent tier: pure-stage
	// memoization results (filter verdicts, rewritten units, feature
	// vectors, checker outcomes) are stored under this directory and
	// reused by later runs. Warm runs are faster but byte-identical.
	CacheDir string // -cache-dir
	// PreciseFeatures switches internal/features to the dataflow-precise
	// analyzer-derived static features (analysis.Features) instead of its
	// AST/token heuristics, and makes the pipeline journal a per-kernel
	// feature event carrying both vectors (inspect with cltrace funnel).
	PreciseFeatures bool // -precise-features
	// FootprintSizing makes the §5.1 payload generator consult the
	// symbolic footprint analysis: buffers grow to max(Sg, proven extent)
	// so stride-past-gid kernels run instead of crashing, and the driver
	// journals per-kernel footprint events (inspect with cltrace funnel).
	FootprintSizing bool // -footprint-sizing
}

// RegisterCLIFlags installs the shared observability flags on fs
// (flag.CommandLine in the binaries).
func RegisterCLIFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.BoolVar(&f.Verbose, "v", false, "enable debug logging")
	fs.BoolVar(&f.Quiet, "quiet", false, "suppress progress logging (warnings and errors only)")
	fs.BoolVar(&f.JSONLog, "log-json", false, "emit logs as JSON lines")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics, /vars and /debug/pprof on this address (e.g. :9090)")
	fs.StringVar(&f.ReportPath, "report", "", "write a JSON telemetry RunReport to this path on exit")
	fs.StringVar(&f.JournalPath, "journal", "", "write a per-artifact JSONL provenance journal to this path (analyze with cltrace)")
	fs.BoolVar(&f.StaticChecks, "static-checks", false, "run the CFG+dataflow static analyzer: strict rejection filtering and dynamic-checker pre-screening")
	fs.BoolVar(&f.Perf, "perf", false, "sample per-stage CPU time, heap allocations, GC pauses and goroutine counts into spans and perf_* metrics")
	fs.DurationVar(&f.StallTimeout, "stall-timeout", 0, "arm the stall watchdog: dump stacks, flight recorder and in-flight artifacts if no progress for this long (0 disables)")
	fs.StringVar(&f.StallDump, "stall-dump", "", "stall watchdog dump path (default <component>.stall.txt)")
	fs.StringVar(&f.PerfHistory, "perf-history", "", "append a machine-stamped per-stage run profile to this JSONL history on exit (inspect with clperf)")
	fs.StringVar(&f.CacheDir, "cache-dir", "", "persist content-addressed stage caches (filter/rewrite/feature/check results) under this directory; warm runs reuse them")
	fs.BoolVar(&f.PreciseFeatures, "precise-features", false, "derive static code features from the CFG+dataflow analyzer (precise coalescing/memory counts) instead of AST heuristics, and journal per-kernel feature-agreement events")
	fs.BoolVar(&f.FootprintSizing, "footprint-sizing", false, "size §5.1 payload buffers to max(Sg, proven symbolic footprint) so stride-past-gid kernels are rescued instead of crashing, and journal per-kernel footprint events")
	return f
}

// perfEnabled reports whether any perf-backend flag is set.
func (f *CLIFlags) perfEnabled() bool {
	return f.Perf || f.StallTimeout > 0 || f.PerfHistory != ""
}

// PerfConfig is what the -perf/-stall-timeout/-perf-history backend needs
// to start: internal/perf receives one via the SetPerfStarter hook.
type PerfConfig struct {
	Component    string
	Start        time.Time
	Perf         bool          // enable per-stage resource sampling
	StallTimeout time.Duration // watchdog deadline (0 = no watchdog)
	StallDump    string        // watchdog dump path ("" = <component>.stall.txt)
	HistoryPath  string        // perf-history JSONL path ("" = no history append)
}

// perfStarter is installed by internal/perf's init (telemetry cannot
// import perf — perf depends on telemetry for spans and metrics). It
// starts sampling/watchdog per cfg and returns the closer that tears
// them down and appends the run's history record.
var perfStarter func(cfg PerfConfig) (io.Closer, error)

// SetPerfStarter installs the perf backend. Called once from
// internal/perf's init; last writer wins.
func SetPerfStarter(start func(cfg PerfConfig) (io.Closer, error)) { perfStarter = start }

// journalOpener is installed by internal/journal's init (telemetry cannot
// import journal — journal depends on telemetry for its drop counters).
// It opens the -journal path, activates the process-global journal, and
// returns the closer that flushes and deactivates it.
var journalOpener func(path string) (io.Closer, error)

// SetJournalOpener installs the -journal backend. Called once from
// internal/journal's init; last writer wins.
func SetJournalOpener(open func(path string) (io.Closer, error)) { journalOpener = open }

// cacheDirApplier is installed by internal/cache's init (telemetry
// cannot import cache — cache depends on telemetry for its hit/miss
// counters). It points the persistent cache tier at the -cache-dir path.
var cacheDirApplier func(path string) error

// SetCacheDirApplier installs the -cache-dir backend. Called once from
// internal/cache's init; last writer wins.
func SetCacheDirApplier(apply func(path string) error) { cacheDirApplier = apply }

// preciseFeaturesApplier is installed by internal/features' init
// (telemetry cannot import features — features depends on telemetry
// transitively through internal/analysis). It flips the process-global
// precise-extraction mode.
var preciseFeaturesApplier func(on bool)

// SetPreciseFeaturesApplier installs the -precise-features backend.
// Called once from internal/features' init; last writer wins.
func SetPreciseFeaturesApplier(apply func(on bool)) { preciseFeaturesApplier = apply }

// footprintSizingApplier is installed by internal/driver's init
// (telemetry cannot import driver — driver depends on telemetry for its
// counters). It flips the process-global footprint-sizing mode.
var footprintSizingApplier func(on bool)

// SetFootprintSizingApplier installs the -footprint-sizing backend.
// Called once from internal/driver's init; last writer wins.
func SetFootprintSizingApplier(apply func(on bool)) { footprintSizingApplier = apply }

// Runtime is the per-process observability state a binary tears down on
// exit: the configured default logger, the optional metrics server, and
// the pending RunReport.
type Runtime struct {
	Component string
	Log       *Logger
	Server    *Server
	start     time.Time
	flags     *CLIFlags
	summaryW  io.Writer
	journal   io.Closer
	perf      io.Closer
}

// Start applies the flags: it configures the process-global logger
// (level and encoding), starts the metrics server when -metrics-addr is
// set, and returns the Runtime whose Close finishes the run.
func (f *CLIFlags) Start(component string) (*Runtime, error) {
	level := LevelInfo
	if f.Verbose {
		level = LevelDebug
	}
	if f.Quiet {
		level = LevelWarn
	}
	enc := EncodeText
	if f.JSONLog {
		enc = EncodeJSON
	}
	log := NewLogger(os.Stderr, level, enc).With("component", component)
	SetDefaultLogger(log)

	rt := &Runtime{Component: component, Log: log, start: time.Now(), flags: f, summaryW: os.Stderr}
	if f.JournalPath != "" {
		if journalOpener == nil {
			return nil, fmt.Errorf("telemetry: -journal set but no journal backend is linked in")
		}
		j, err := journalOpener(f.JournalPath)
		if err != nil {
			return nil, err
		}
		rt.journal = j
		log.Info("provenance journal open", "path", f.JournalPath)
	}
	if f.CacheDir != "" {
		if cacheDirApplier == nil {
			if rt.journal != nil {
				rt.journal.Close()
			}
			return nil, fmt.Errorf("telemetry: -cache-dir set but no cache backend is linked in")
		}
		if err := cacheDirApplier(f.CacheDir); err != nil {
			if rt.journal != nil {
				rt.journal.Close()
			}
			return nil, err
		}
		log.Info("persistent stage cache enabled", "dir", f.CacheDir)
	}
	if f.PreciseFeatures {
		if preciseFeaturesApplier == nil {
			if rt.journal != nil {
				rt.journal.Close()
			}
			return nil, fmt.Errorf("telemetry: -precise-features set but no features backend is linked in")
		}
		preciseFeaturesApplier(true)
		log.Info("precise feature extraction enabled")
	}
	if f.FootprintSizing {
		if footprintSizingApplier == nil {
			if rt.journal != nil {
				rt.journal.Close()
			}
			return nil, fmt.Errorf("telemetry: -footprint-sizing set but no driver backend is linked in")
		}
		footprintSizingApplier(true)
		log.Info("footprint-aware payload sizing enabled")
	}
	if f.perfEnabled() {
		if perfStarter == nil {
			if rt.journal != nil {
				rt.journal.Close()
			}
			return nil, fmt.Errorf("telemetry: -perf/-stall-timeout/-perf-history set but no perf backend is linked in")
		}
		p, err := perfStarter(PerfConfig{
			Component:    component,
			Start:        rt.start,
			Perf:         f.Perf,
			StallTimeout: f.StallTimeout,
			StallDump:    f.StallDump,
			HistoryPath:  f.PerfHistory,
		})
		if err != nil {
			if rt.journal != nil {
				rt.journal.Close()
			}
			return nil, err
		}
		rt.perf = p
	}
	if f.MetricsAddr != "" {
		srv, err := Serve(f.MetricsAddr, Default(), DefaultTracer())
		if err != nil {
			if rt.perf != nil {
				rt.perf.Close()
			}
			if rt.journal != nil {
				rt.journal.Close()
			}
			return nil, err
		}
		rt.Server = srv
		log.Info("telemetry server listening",
			"addr", srv.Addr, "endpoints", "/metrics /vars /stages /debug/pprof/")
	}
	return rt, nil
}

// Close finishes the run: it prints the stage-tree run summary (unless
// -quiet or -log-json — the tree is plain text and would corrupt a
// JSON-lines stream; machine consumers use -report), writes the
// RunReport when -report is set, tears down the perf backend (which
// appends the -perf-history record), flushes and closes the provenance
// journal when -journal is set, and stops the metrics server.
func (rt *Runtime) Close() error {
	if rt == nil {
		return nil
	}
	var firstErr error
	if !rt.flags.Quiet && !rt.flags.JSONLog {
		if tree := DefaultTracer().TreeString(); tree != "" {
			fmt.Fprintf(rt.summaryW, "---- run summary (%s, %s) ----\n%s",
				rt.Component, time.Since(rt.start).Round(time.Millisecond), tree)
		}
	}
	if rt.flags.ReportPath != "" {
		if err := WriteDefaultReport(rt.Component, rt.flags.ReportPath, rt.start); err != nil {
			firstErr = err
			rt.Log.Error("writing run report failed", "path", rt.flags.ReportPath, "err", err)
		} else {
			rt.Log.Info("run report written", "path", rt.flags.ReportPath)
		}
	}
	if rt.perf != nil {
		if err := rt.perf.Close(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			rt.Log.Error("closing perf backend failed", "err", err)
		}
	}
	if rt.journal != nil {
		if err := rt.journal.Close(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			rt.Log.Error("closing provenance journal failed", "err", err)
		}
	}
	if err := rt.Server.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

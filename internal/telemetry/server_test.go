package telemetry

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pipeline_runs_total", "Total pipeline runs.").Add(3)
	tr := NewTracer(reg)
	tr.Start("stage.one").End()

	ts := httptest.NewServer(NewServeMux(reg, tr))
	defer ts.Close()

	code, body := get(t, ts.URL+"/metrics")
	if code != 200 || !strings.Contains(body, "pipeline_runs_total 3") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if !strings.Contains(body, "# TYPE pipeline_runs_total counter") {
		t.Errorf("/metrics missing TYPE header: %q", body)
	}

	code, body = get(t, ts.URL+"/vars")
	if code != 200 {
		t.Fatalf("/vars: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if snap.Counters["pipeline_runs_total"] != 3 {
		t.Errorf("/vars counters = %v", snap.Counters)
	}

	code, body = get(t, ts.URL+"/stages")
	if code != 200 || !strings.Contains(body, "stage.one") {
		t.Errorf("/stages: %d %q", code, body)
	}

	code, body = get(t, ts.URL+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	s, err := Serve("127.0.0.1:0", reg, NewTracer(reg))
	if err != nil {
		t.Fatal(err)
	}
	code, _ := get(t, "http://"+s.Addr+"/metrics")
	if code != 200 {
		t.Errorf("/metrics over live server: %d", code)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := Serve("definitely-not-an-addr:xx", reg, nil); err == nil {
		t.Error("bad address did not fail synchronously")
	}
}

func TestCLIFlagsRuntime(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterCLIFlags(fs)
	report := filepath.Join(t.TempDir(), "report.json")
	if err := fs.Parse([]string{"-quiet", "-metrics-addr", "127.0.0.1:0", "-report", report}); err != nil {
		t.Fatal(err)
	}
	if !f.Quiet || f.MetricsAddr == "" || f.ReportPath != report {
		t.Fatalf("flags = %+v", f)
	}
	rt, err := f.Start("test")
	if err != nil {
		t.Fatal(err)
	}
	if DefaultLogger().Level() != LevelWarn {
		t.Errorf("quiet level = %v", DefaultLogger().Level())
	}
	Default().Counter("t_runs_total", "").Inc()
	sp := DefaultTracer().Start("t.stage")
	sp.End()

	code, body := get(t, "http://"+rt.Server.Addr+"/metrics")
	if code != 200 || !strings.Contains(body, "t_runs_total") {
		t.Errorf("live /metrics: %d %q", code, body)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if r.Component != "test" || r.Counters["t_runs_total"] < 1 {
		t.Errorf("report = %+v", r)
	}
	found := false
	for _, st := range r.Stages {
		if st.Name == "t.stage" {
			found = true
		}
	}
	if !found {
		t.Errorf("report stages missing t.stage: %+v", r.Stages)
	}
}

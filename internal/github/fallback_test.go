// External test package: corpus imports github, so asserting the fallback
// kernel against the real §4.1 filter has to happen from outside the
// github package to avoid an import cycle.
package github_test

import (
	"strings"
	"testing"

	"clgen/internal/corpus"
	"clgen/internal/github"
)

// TestFallbackKernelPassesFilter pins the contract the fallback replaced a
// "// TODO: implement" placeholder to satisfy: it must be a well-formed
// kernel that clears the rejection filter, not another sub-threshold stub.
func TestFallbackKernelPassesFilter(t *testing.T) {
	res := corpus.Filter(github.FallbackKernel, false)
	if !res.OK {
		t.Fatalf("FallbackKernel rejected by the §4.1 filter: %s", res.Reason)
	}
	if strings.Contains(github.FallbackKernel, "TODO") {
		t.Fatal("FallbackKernel still carries a TODO placeholder")
	}
}

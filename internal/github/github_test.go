package github

import (
	"math/rand"
	"strings"
	"testing"

	"clgen/internal/clc"
)

func TestMineDeterministic(t *testing.T) {
	a := Mine(MinerConfig{Seed: 42, Repos: 10})
	b := Mine(MinerConfig{Seed: 42, Repos: 10})
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("file %d differs", i)
		}
	}
	c := Mine(MinerConfig{Seed: 43, Repos: 10})
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Text != c[i].Text {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical mines")
	}
}

func TestMineScale(t *testing.T) {
	files := Mine(MinerConfig{Seed: 1, Repos: 30, FilesPerRepo: 8})
	if len(files) < 100 {
		t.Fatalf("only %d files mined", len(files))
	}
	var lines int
	repos := map[string]bool{}
	for _, f := range files {
		lines += f.Lines()
		repos[f.Repo] = true
		if f.Path == "" || f.Text == "" {
			t.Fatalf("degenerate file %+v", f)
		}
	}
	if lines < 1000 {
		t.Errorf("mine too small: %d lines", lines)
	}
	if len(repos) < 10 {
		t.Errorf("only %d distinct repos", len(repos))
	}
}

func TestKernelFilesMostlyCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ok := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		src := KernelFile(rng, false)
		expanded, err := clc.Preprocess(src)
		if err != nil {
			continue
		}
		f, err := clc.Parse(expanded)
		if err != nil {
			t.Errorf("clean kernel file does not parse: %v\n%s", err, src)
			continue
		}
		if err := clc.Check(f); err != nil {
			t.Errorf("clean kernel file does not check: %v\n%s", err, src)
			continue
		}
		if len(f.Kernels()) == 0 {
			t.Errorf("no kernels in generated file:\n%s", src)
			continue
		}
		ok++
	}
	if ok < trials*95/100 {
		t.Errorf("only %d/%d clean files compile", ok, trials)
	}
}

func TestShimFilesNeedShim(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	needing := 0
	for i := 0; i < 50; i++ {
		src := KernelFile(rng, true)
		expanded, err := clc.Preprocess(src)
		if err != nil {
			continue
		}
		if _, err := clc.Parse(expanded); err != nil {
			needing++
		}
	}
	if needing < 25 {
		t.Errorf("only %d/50 shim files actually fail without the shim", needing)
	}
}

func TestFileClassMix(t *testing.T) {
	files := Mine(MinerConfig{Seed: 3, Repos: 100, FilesPerRepo: 10})
	host, device := 0, 0
	for _, f := range files {
		if strings.HasSuffix(f.Path, ".c") {
			host++
		} else {
			device++
		}
	}
	if host == 0 || device == 0 {
		t.Fatalf("class mix degenerate: host=%d device=%d", host, device)
	}
	ratio := float64(host) / float64(host+device)
	if ratio < 0.05 || ratio > 0.4 {
		t.Errorf("host-file ratio %f outside expected band", ratio)
	}
}

func TestVarietyOfKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seen := map[string]bool{}
	barriers, atomics, loops := 0, 0, 0
	for i := 0; i < 100; i++ {
		src := KernelFile(rng, false)
		seen[src] = true
		if strings.Contains(src, "barrier(") {
			barriers++
		}
		if strings.Contains(src, "atomic_add") {
			atomics++
		}
		if strings.Contains(src, "for (") {
			loops++
		}
	}
	if len(seen) < 95 {
		t.Errorf("only %d/100 unique files", len(seen))
	}
	if barriers == 0 || atomics == 0 || loops == 0 {
		t.Errorf("missing construct variety: barriers=%d atomics=%d loops=%d", barriers, atomics, loops)
	}
}

// Package github simulates the paper's GitHub mining stage (§4.1).
//
// The original work scraped 793 repositories for 8078 "content files"
// potentially containing OpenCL. With no network or GitHub dataset
// available, this package substitutes a deterministic, seeded generator of
// synthetic repositories whose content files exhibit the same classes the
// real pipeline had to cope with:
//
//   - standalone compilable OpenCL kernels in many human styles (macros,
//     comments, idiosyncratic naming, helper functions);
//   - device code that only compiles after the shim header supplies
//     inferred type definitions (FLOAT_T, WG_SIZE, ...);
//   - host-side C/C++ that is not OpenCL at all;
//   - broken or truncated files;
//   - trivial kernels below the rejection filter's instruction threshold.
//
// The mix ratios default to values that reproduce the paper's reported
// discard rates (40% without the shim header, 32% with it).
package github

import (
	"fmt"
	"math/rand"
	"strings"
)

// ContentFile is one mined file.
type ContentFile struct {
	Repo string
	Path string
	Text string
}

// Lines returns the number of lines in the file.
func (f ContentFile) Lines() int { return strings.Count(f.Text, "\n") + 1 }

// MinerConfig scales the synthetic mine.
type MinerConfig struct {
	Seed  int64
	Repos int // number of repositories; default 50
	// FilesPerRepo is the mean number of content files per repository
	// (default 10, varied ±50% per repo).
	FilesPerRepo int
}

func (c *MinerConfig) defaults() {
	if c.Repos <= 0 {
		c.Repos = 50
	}
	if c.FilesPerRepo <= 0 {
		c.FilesPerRepo = 10
	}
}

// Mine produces the synthetic content-file dataset. It is deterministic in
// the seed: the "search engine" of the paper maps here to a reproducible
// walk over generated repositories.
func Mine(cfg MinerConfig) []ContentFile {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var files []ContentFile
	for r := 0; r < cfg.Repos; r++ {
		repo := fmt.Sprintf("%s/%s", pick(rng, userNames), pick(rng, repoNames))
		n := cfg.FilesPerRepo/2 + rng.Intn(cfg.FilesPerRepo+1)
		for i := 0; i < n; i++ {
			files = append(files, generateFile(rng, repo, i))
		}
	}
	return files
}

// generateFile draws one content file from the class mix.
func generateFile(rng *rand.Rand, repo string, idx int) ContentFile {
	// The class mix is calibrated so the rejection filter reproduces the
	// paper's discard rates: ~40% without the shim header, ~32% with it.
	roll := rng.Float64()
	var text, ext string
	switch {
	case roll < 0.60: // clean standalone OpenCL
		text = KernelFile(rng, false)
		ext = ".cl"
	case roll < 0.69: // OpenCL needing the shim's inferred types
		text = KernelFile(rng, true)
		ext = ".cl"
	case roll < 0.75: // trivial kernels below the instruction threshold
		text = trivialFile(rng)
		ext = ".cl"
	case roll < 0.88: // host-side code mis-identified as OpenCL
		text = hostFile(rng)
		ext = ".c"
	default: // broken / truncated device code
		text = brokenFile(rng)
		ext = ".cl"
	}
	return ContentFile{
		Repo: repo,
		Path: fmt.Sprintf("%s/%s_%d%s", pick(rng, dirNames), pick(rng, fileStems), idx, ext),
		Text: text,
	}
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

var (
	userNames = []string{"gpudev", "hpclab", "jsmith", "oclworks", "parallelsoft",
		"kernelhacker", "computegroup", "visionteam", "mlsys", "simcore"}
	repoNames = []string{"ocl-benchmarks", "gpu-compute", "fastmath", "imgproc",
		"nbody-sim", "linear-algebra", "raytrace", "fluid-dynamics", "crypto-miner",
		"deep-infer", "particle-sys", "signal-dsp"}
	dirNames  = []string{"kernels", "src", "cl", "opencl", "device", "gpu", "lib"}
	fileStems = []string{"kernels", "compute", "math", "ops", "reduce", "map",
		"transform", "filter", "util", "core", "main", "solver"}
)

package github

import (
	"fmt"
	"math/rand"
	"strings"
)

// KernelFile generates one human-style OpenCL content file containing one
// to three kernels, optional helper functions, macros, and comments. When
// needsShim is set the file uses identifiers that only resolve against the
// shim header's inferred typedefs and constants (FLOAT_T, WG_SIZE, ...),
// reproducing the paper's "undeclared identifier" failure class.
func KernelFile(rng *rand.Rand, needsShim bool) string {
	st := newStyle(rng, needsShim)
	var b strings.Builder
	if rng.Float64() < 0.5 {
		fmt.Fprintf(&b, "// %s\n// Auto-tuned for %s\n\n", pick(rng, headerComments), pick(rng, deviceNames))
	}
	st.emitPrelude(&b)
	nKernels := 1 + rng.Intn(3)
	for i := 0; i < nKernels; i++ {
		if i > 0 {
			b.WriteString("\n")
		}
		family := kernelFamilies[rng.Intn(len(kernelFamilies))]
		family(&b, rng, st)
	}
	return b.String()
}

var headerComments = []string{
	"OpenCL compute kernels", "Device-side implementation",
	"Ported from the CUDA version", "Part of the GPU acceleration layer",
	"Generated bindings - do not edit by hand", "Optimized memory access pattern",
}

var deviceNames = []string{"NVIDIA GTX 970", "AMD Tahiti", "Intel HD Graphics",
	"Mali T-604", "generic devices"}

// style captures the per-file authoring idiosyncrasies.
type style struct {
	typ        string // element type as written: float, double, int, DTYPE, FLOAT_T
	realType   string // underlying scalar
	idx        string // index variable name
	size       string // size parameter name
	comments   bool
	earlyRet   bool // guard via early return rather than if-wrap
	unsignedId bool
	macroAlpha string // macro name for the scale constant, "" if literal
	needsShim  bool
	wgMacro    string // WG_SIZE-style constant from the shim, "" otherwise
}

func newStyle(rng *rand.Rand, needsShim bool) *style {
	st := &style{
		idx:        pick(rng, idxNames),
		size:       pick(rng, sizeNames),
		comments:   rng.Float64() < 0.4,
		earlyRet:   rng.Float64() < 0.4,
		unsignedId: rng.Float64() < 0.35,
		needsShim:  needsShim,
	}
	st.realType = pick(rng, []string{"float", "float", "float", "int", "double"})
	st.typ = st.realType
	if needsShim {
		switch st.realType {
		case "float":
			st.typ = "FLOAT_T"
		case "int":
			st.typ = "INDEX_TYPE"
		case "double":
			st.typ = "REAL_T"
		}
		if rng.Float64() < 0.5 {
			st.wgMacro = "WG_SIZE"
		}
	} else if rng.Float64() < 0.3 {
		st.typ = "DTYPE"
	}
	if rng.Float64() < 0.3 {
		st.macroAlpha = strings.ToUpper(pick(rng, scalarNames))
	}
	return st
}

func (st *style) emitPrelude(b *strings.Builder) {
	if st.typ == "DTYPE" {
		fmt.Fprintf(b, "#define DTYPE %s\n", st.realType)
	}
	if st.macroAlpha != "" {
		fmt.Fprintf(b, "#define %s 2.5f\n", st.macroAlpha)
	}
	if st.typ == "DTYPE" || st.macroAlpha != "" {
		b.WriteString("\n")
	}
}

// idxDecl emits the global-id declaration line.
func (st *style) idxDecl() string {
	t := "int"
	if st.unsignedId {
		t = "unsigned int"
	}
	return fmt.Sprintf("  %s %s = get_global_id(0);", t, st.idx)
}

// guardOpen emits the bounds guard; returns the indent for the guarded body
// and whether a closing brace is required.
func (st *style) guardOpen(b *strings.Builder) (string, bool) {
	if st.earlyRet {
		fmt.Fprintf(b, "  if (%s >= %s) {\n    return;\n  }\n", st.idx, st.size)
		return "  ", false
	}
	fmt.Fprintf(b, "  if (%s < %s) {\n", st.idx, st.size)
	return "    ", true
}

func (st *style) alpha() string {
	if st.macroAlpha != "" {
		return st.macroAlpha
	}
	if st.realType == "int" {
		return "3"
	}
	return "2.5f"
}

func (st *style) comment(b *strings.Builder, text string) {
	if st.comments {
		fmt.Fprintf(b, "  // %s\n", text)
	}
}

var (
	bufNames    = []string{"in", "input", "src", "data", "x", "a", "buf", "vec", "values", "samples", "signal"}
	outNames    = []string{"out", "output", "dst", "result", "y", "b", "res", "sink"}
	auxNames    = []string{"weights", "coeff", "mask", "lut", "bias", "gain"}
	idxNames    = []string{"i", "idx", "tid", "gid", "id", "gidx"}
	sizeNames   = []string{"n", "count", "size", "len", "num_elements", "total"}
	scalarNames = []string{"alpha", "beta", "scale", "factor", "offset", "threshold"}
	fnNames     = []string{"vec_add", "vector_sum", "saxpy_kernel", "axpy", "scale_vec",
		"map_values", "reduce_partial", "stencil3", "mat_vec_mul", "transform_data",
		"apply_gain", "compute_step", "update_state", "normalize_vec", "threshold_op",
		"dot_partial", "blur_line", "integrate_vals", "accumulate", "elementwise_op"}
)

type kernelFamily func(b *strings.Builder, rng *rand.Rand, st *style)

var kernelFamilies = []kernelFamily{
	genZip, genSaxpy, genMap, genReduction, genStencil, genMatVec,
	genThreshold, genCopyStride, genVectorType, genIterative, genHistogram,
	genDotPartial, genTranspose2D, genScanSerial,
	// Loop- and barrier-heavy families appear twice: the corpus (and hence
	// the learned model) should cover the compute-bound region of the
	// feature space as well as the streaming one.
	genReduction, genIterative, genDotPartial, genMatVec,
}

// genZip: c[i] = a[i] OP b[i] with optional fused extras.
func genZip(b *strings.Builder, rng *rand.Rand, st *style) {
	a, c, o := pick(rng, bufNames), pick(rng, bufNames)+"2", pick(rng, outNames)
	op := pick(rng, []string{"+", "-", "*"})
	fmt.Fprintf(b, "__kernel void %s(__global %s* %s,\n", pick(rng, fnNames), st.typ, a)
	fmt.Fprintf(b, "                 __global %s* %s,\n", st.typ, c)
	fmt.Fprintf(b, "                 __global %s* %s,\n", st.typ, o)
	fmt.Fprintf(b, "                 const int %s) {\n", st.size)
	b.WriteString(st.idxDecl() + "\n")
	indent, closeBrace := st.guardOpen(b)
	st.comment(b, "elementwise combine")
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(b, "%s%s[%s] = %s[%s] %s %s[%s];\n", indent, o, st.idx, a, st.idx, op, c, st.idx)
	case 1:
		fmt.Fprintf(b, "%s%s[%s] = %s * %s[%s] %s %s[%s];\n", indent, o, st.idx, st.alpha(), a, st.idx, op, c, st.idx)
	default:
		fmt.Fprintf(b, "%s%s[%s] = %s[%s] %s %s[%s] + %s[%s];\n", indent, o, st.idx, a, st.idx, op, c, st.idx, a, st.idx)
	}
	if closeBrace {
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

// genSaxpy: y[i] = alpha * x[i] + y[i], sometimes via an inline helper.
func genSaxpy(b *strings.Builder, rng *rand.Rand, st *style) {
	x, y := pick(rng, bufNames), pick(rng, outNames)
	helper := rng.Float64() < 0.4
	if helper {
		fmt.Fprintf(b, "inline %s scale_val(%s v) {\n  return %s * v;\n}\n\n", st.typ, st.typ, st.alpha())
	}
	fmt.Fprintf(b, "__kernel void %s(__global %s* %s, __global %s* %s, const int %s) {\n",
		pick(rng, fnNames), st.typ, x, st.typ, y, st.size)
	b.WriteString(st.idxDecl() + "\n")
	indent, closeBrace := st.guardOpen(b)
	if helper {
		fmt.Fprintf(b, "%s%s[%s] += scale_val(%s[%s]);\n", indent, y, st.idx, x, st.idx)
	} else {
		fmt.Fprintf(b, "%s%s[%s] = %s * %s[%s] + %s[%s];\n", indent, y, st.idx, st.alpha(), x, st.idx, y, st.idx)
	}
	if closeBrace {
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

// genMap: out[i] = f(in[i]) for a unary math f.
func genMap(b *strings.Builder, rng *rand.Rand, st *style) {
	in, out := pick(rng, bufNames), pick(rng, outNames)
	t := st.typ
	exprs := []string{
		"sqrt(fabs(%s[%s]))", "exp(%s[%s])", "%s[%s] * %s[%s]",
		"log(fabs(%s[%s]) + 1.0f)", "sin(%s[%s]) + cos(%s[%s])",
	}
	if st.realType == "int" {
		exprs = []string{"%s[%s] * %s[%s]", "abs(%s[%s])", "%s[%s] << 1"}
	}
	expr := exprs[rng.Intn(len(exprs))]
	filled := fillExpr(expr, in, st.idx)
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s, __global %s* %s, const int %s) {\n",
		pick(rng, fnNames), t, in, t, out, st.size)
	b.WriteString(st.idxDecl() + "\n")
	indent, closeBrace := st.guardOpen(b)
	st.comment(b, "apply the transfer function")
	fmt.Fprintf(b, "%s%s[%s] = %s;\n", indent, out, st.idx, filled)
	if closeBrace {
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

// fillExpr substitutes (buf, idx) pairs into a printf-style pattern.
func fillExpr(pattern, buf, idx string) string {
	n := strings.Count(pattern, "%s") / 2
	args := make([]any, 0, n*2)
	for i := 0; i < n; i++ {
		args = append(args, buf, idx)
	}
	return fmt.Sprintf(pattern, args...)
}

// genReduction: classic local-memory tree reduction with barriers.
func genReduction(b *strings.Builder, rng *rand.Rand, st *style) {
	in, out := pick(rng, bufNames), pick(rng, outNames)
	wg := "64"
	if st.wgMacro != "" {
		wg = st.wgMacro
	}
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s,\n", pick(rng, fnNames), st.typ, in)
	fmt.Fprintf(b, "                 __global %s* %s,\n", st.typ, out)
	fmt.Fprintf(b, "                 __local %s* scratch,\n", st.typ)
	fmt.Fprintf(b, "                 const int %s) {\n", st.size)
	fmt.Fprintf(b, "  int lid = get_local_id(0);\n")
	fmt.Fprintf(b, "  int gid = get_global_id(0);\n")
	st.comment(b, "load into shared memory")
	fmt.Fprintf(b, "  scratch[lid] = (gid < %s) ? %s[gid] : 0;\n", st.size, in)
	b.WriteString("  barrier(CLK_LOCAL_MEM_FENCE);\n")
	fmt.Fprintf(b, "  for (int s = %s / 2; s > 0; s >>= 1) {\n", wg)
	b.WriteString("    if (lid < s) {\n")
	b.WriteString("      scratch[lid] += scratch[lid + s];\n")
	b.WriteString("    }\n")
	b.WriteString("    barrier(CLK_LOCAL_MEM_FENCE);\n")
	b.WriteString("  }\n")
	b.WriteString("  if (lid == 0) {\n")
	fmt.Fprintf(b, "    %s[get_group_id(0)] = scratch[0];\n", out)
	b.WriteString("  }\n}\n")
}

// genStencil: 3-point stencil with boundary handling.
func genStencil(b *strings.Builder, rng *rand.Rand, st *style) {
	in, out := pick(rng, bufNames), pick(rng, outNames)
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s, __global %s* %s, const int %s) {\n",
		pick(rng, fnNames), st.typ, in, st.typ, out, st.size)
	b.WriteString(st.idxDecl() + "\n")
	fmt.Fprintf(b, "  if (%s > 0 && %s < %s - 1) {\n", st.idx, st.idx, st.size)
	st.comment(b, "3-point average")
	div := "3.0f"
	if st.realType == "int" {
		div = "3"
	}
	fmt.Fprintf(b, "    %s[%s] = (%s[%s - 1] + %s[%s] + %s[%s + 1]) / %s;\n",
		out, st.idx, in, st.idx, in, st.idx, in, st.idx, div)
	b.WriteString("  }\n}\n")
}

// genMatVec: naive dense matrix-vector product with an inner loop.
func genMatVec(b *strings.Builder, rng *rand.Rand, st *style) {
	m, v, out := "matrix", pick(rng, bufNames), pick(rng, outNames)
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s,\n", pick(rng, fnNames), st.typ, m)
	fmt.Fprintf(b, "                 __global const %s* %s,\n", st.typ, v)
	fmt.Fprintf(b, "                 __global %s* %s,\n", st.typ, out)
	fmt.Fprintf(b, "                 const int cols, const int %s) {\n", st.size)
	fmt.Fprintf(b, "  int row = get_global_id(0);\n")
	fmt.Fprintf(b, "  if (row < %s) {\n", st.size)
	zero := "0.0f"
	if st.realType == "int" {
		zero = "0"
	}
	fmt.Fprintf(b, "    %s sum = %s;\n", st.typ, zero)
	b.WriteString("    for (int j = 0; j < cols; j++) {\n")
	fmt.Fprintf(b, "      sum += %s[row * cols + j] * %s[j];\n", m, v)
	b.WriteString("    }\n")
	fmt.Fprintf(b, "    %s[row] = sum;\n", out)
	b.WriteString("  }\n}\n")
}

// genThreshold: data-dependent branching.
func genThreshold(b *strings.Builder, rng *rand.Rand, st *style) {
	in, out := pick(rng, bufNames), pick(rng, outNames)
	thr := pick(rng, scalarNames)
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s, __global %s* %s, const %s %s, const int %s) {\n",
		pick(rng, fnNames), st.typ, in, st.typ, out, st.typ, thr, st.size)
	b.WriteString(st.idxDecl() + "\n")
	indent, closeBrace := st.guardOpen(b)
	if rng.Float64() < 0.5 {
		fmt.Fprintf(b, "%sif (%s[%s] > %s) {\n", indent, in, st.idx, thr)
		fmt.Fprintf(b, "%s  %s[%s] = %s[%s];\n", indent, out, st.idx, in, st.idx)
		fmt.Fprintf(b, "%s} else {\n", indent)
		fmt.Fprintf(b, "%s  %s[%s] = %s;\n", indent, out, st.idx, thr)
		fmt.Fprintf(b, "%s}\n", indent)
	} else {
		fmt.Fprintf(b, "%s%s[%s] = (%s[%s] > %s) ? %s[%s] : %s;\n",
			indent, out, st.idx, in, st.idx, thr, in, st.idx, thr)
	}
	if closeBrace {
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

// genCopyStride: strided gather (uncoalesced pattern).
func genCopyStride(b *strings.Builder, rng *rand.Rand, st *style) {
	in, out := pick(rng, bufNames), pick(rng, outNames)
	stride := []string{"2", "4", "stride"}[rng.Intn(3)]
	extra := ""
	if stride == "stride" {
		extra = ", const int stride"
	}
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s, __global %s* %s, const int %s%s) {\n",
		pick(rng, fnNames), st.typ, in, st.typ, out, st.size, extra)
	b.WriteString(st.idxDecl() + "\n")
	indent, closeBrace := st.guardOpen(b)
	fmt.Fprintf(b, "%s%s[%s] = %s[%s * %s];\n", indent, out, st.idx, in, st.idx, stride)
	if closeBrace {
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

// genVectorType: float4 arithmetic.
func genVectorType(b *strings.Builder, rng *rand.Rand, st *style) {
	if st.realType == "int" || st.needsShim {
		genZip(b, rng, st)
		return
	}
	in, out := pick(rng, bufNames), pick(rng, outNames)
	fmt.Fprintf(b, "__kernel void %s(__global float4* %s, __global float4* %s, const int %s) {\n",
		pick(rng, fnNames), in, out, st.size)
	b.WriteString(st.idxDecl() + "\n")
	indent, closeBrace := st.guardOpen(b)
	fmt.Fprintf(b, "%sfloat4 v = %s[%s];\n", indent, in, st.idx)
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(b, "%s%s[%s] = v * 2.0f + (float4)(1.0f, 2.0f, 3.0f, 4.0f);\n", indent, out, st.idx)
	case 1:
		fmt.Fprintf(b, "%s%s[%s] = v.wzyx;\n", indent, out, st.idx)
	default:
		fmt.Fprintf(b, "%sfloat s = dot(v, v);\n", indent)
		fmt.Fprintf(b, "%s%s[%s] = v * s;\n", indent, out, st.idx)
	}
	if closeBrace {
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

// genIterative: a convergence loop per work-item.
func genIterative(b *strings.Builder, rng *rand.Rand, st *style) {
	if st.realType == "int" {
		genMap(b, rng, st)
		return
	}
	in, out := pick(rng, bufNames), pick(rng, outNames)
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s, __global %s* %s, const int %s, const int iters) {\n",
		pick(rng, fnNames), st.typ, in, st.typ, out, st.size)
	b.WriteString(st.idxDecl() + "\n")
	indent, closeBrace := st.guardOpen(b)
	fmt.Fprintf(b, "%s%s v = %s[%s];\n", indent, st.typ, in, st.idx)
	fmt.Fprintf(b, "%sfor (int k = 0; k < iters; k++) {\n", indent)
	st.comment(b, "newton step")
	fmt.Fprintf(b, "%s  v = 0.5f * (v + %s[%s] / (v + 1.0f));\n", indent, in, st.idx)
	fmt.Fprintf(b, "%s}\n", indent)
	fmt.Fprintf(b, "%s%s[%s] = v;\n", indent, out, st.idx)
	if closeBrace {
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

// genHistogram: atomic updates into a shared table.
func genHistogram(b *strings.Builder, rng *rand.Rand, st *style) {
	in := pick(rng, bufNames)
	fmt.Fprintf(b, "__kernel void %s(__global const int* %s, __global int* hist, const int %s, const int bins) {\n",
		pick(rng, fnNames), in, st.size)
	b.WriteString(st.idxDecl() + "\n")
	indent, closeBrace := st.guardOpen(b)
	fmt.Fprintf(b, "%sint bin = %s[%s] %% bins;\n", indent, in, st.idx)
	fmt.Fprintf(b, "%sif (bin < 0) {\n%s  bin += bins;\n%s}\n", indent, indent, indent)
	fmt.Fprintf(b, "%satomic_add(&hist[bin], 1);\n", indent)
	if closeBrace {
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

// genDotPartial: dot product with local accumulation.
func genDotPartial(b *strings.Builder, rng *rand.Rand, st *style) {
	x, y, out := pick(rng, bufNames), pick(rng, bufNames)+"_b", pick(rng, outNames)
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s,\n", pick(rng, fnNames), st.typ, x)
	fmt.Fprintf(b, "                 __global const %s* %s,\n", st.typ, y)
	fmt.Fprintf(b, "                 __global %s* %s,\n", st.typ, out)
	fmt.Fprintf(b, "                 __local %s* tmp,\n", st.typ)
	fmt.Fprintf(b, "                 const int %s) {\n", st.size)
	b.WriteString("  int gid = get_global_id(0);\n  int lid = get_local_id(0);\n")
	zero := "0.0f"
	if st.realType == "int" {
		zero = "0"
	}
	fmt.Fprintf(b, "  tmp[lid] = (gid < %s) ? %s[gid] * %s[gid] : %s;\n", st.size, x, y, zero)
	b.WriteString("  barrier(CLK_LOCAL_MEM_FENCE);\n")
	b.WriteString("  if (lid == 0) {\n")
	fmt.Fprintf(b, "    %s acc = %s;\n", st.typ, zero)
	b.WriteString("    for (int j = 0; j < get_local_size(0); j++) {\n      acc += tmp[j];\n    }\n")
	fmt.Fprintf(b, "    %s[get_group_id(0)] = acc;\n", out)
	b.WriteString("  }\n}\n")
}

// genTranspose2D: two-dimensional NDRange with row/col indexing.
func genTranspose2D(b *strings.Builder, rng *rand.Rand, st *style) {
	in, out := pick(rng, bufNames), pick(rng, outNames)
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s, __global %s* %s, const int width, const int height) {\n",
		pick(rng, fnNames), st.typ, in, st.typ, out)
	b.WriteString("  int col = get_global_id(0);\n  int row = get_global_id(1);\n")
	b.WriteString("  if (col < width && row < height) {\n")
	fmt.Fprintf(b, "    %s[col * height + row] = %s[row * width + col];\n", out, in)
	b.WriteString("  }\n}\n")
}

// genScanSerial: per-workitem serial prefix over a chunk.
func genScanSerial(b *strings.Builder, rng *rand.Rand, st *style) {
	in, out := pick(rng, bufNames), pick(rng, outNames)
	fmt.Fprintf(b, "__kernel void %s(__global const %s* %s, __global %s* %s, const int chunk, const int %s) {\n",
		pick(rng, fnNames), st.typ, in, st.typ, out, st.size)
	b.WriteString(st.idxDecl() + "\n")
	zero := "0.0f"
	if st.realType == "int" {
		zero = "0"
	}
	fmt.Fprintf(b, "  %s acc = %s;\n", st.typ, zero)
	fmt.Fprintf(b, "  for (int j = 0; j < chunk; j++) {\n")
	fmt.Fprintf(b, "    int pos = %s * chunk + j;\n", st.idx)
	fmt.Fprintf(b, "    if (pos < %s) {\n", st.size)
	fmt.Fprintf(b, "      acc += %s[pos];\n", in)
	fmt.Fprintf(b, "      %s[pos] = acc;\n", out)
	b.WriteString("    }\n  }\n}\n")
}

// FallbackKernel is the deterministic well-formed kernel trivialFile
// falls back to: a bounds-checked scale-and-shift with enough static
// instructions to clear the §4.1 rejection filter (see the corpus test
// asserting exactly that). Being a constant, it consumes no RNG state, so
// swapping its body never shifts the miner's downstream draws.
const FallbackKernel = "__kernel void scale_shift(__global float* a, const float s, const int n) {\n" +
	"  int gid = get_global_id(0);\n" +
	"  if (gid < n) {\n" +
	"    a[gid] = a[gid] * s + 1.0f;\n" +
	"  }\n" +
	"}\n"

// trivialFile produces small kernels: two variants fall below the
// rejection filter's minimum static instruction count, and the third is
// FallbackKernel — well-formed and filter-passing, standing in for the
// real GitHub files that are minimal yet legitimate.
func trivialFile(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return "__kernel void noop(__global float* a) {\n}\n"
	case 1:
		return fmt.Sprintf("__kernel void set_one(__global %s* out) {\n  out[0] = 1;\n}\n",
			pick(rng, []string{"int", "float"}))
	default:
		return FallbackKernel
	}
}

// hostFile produces host-side code the search engine mis-identified.
func hostFile(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("#include <stdio.h>\n#include <CL/cl.h>\n\n")
	b.WriteString("int main(int argc, char** argv) {\n")
	b.WriteString("  cl_context ctx = clCreateContext(NULL, 1, &dev, NULL, NULL, &err);\n")
	b.WriteString("  cl_mem buf = clCreateBuffer(ctx, CL_MEM_READ_WRITE, size, NULL, &err);\n")
	if rng.Float64() < 0.5 {
		b.WriteString("  printf(\"launching kernel\\n\");\n")
	}
	b.WriteString("  return 0;\n}\n")
	return b.String()
}

// brokenFile produces device code that cannot compile: truncation, missing
// types that even the shim does not provide, or stray syntax.
func brokenFile(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		// Truncated mid-kernel.
		full := KernelFile(rng, false)
		if len(full) > 40 {
			return full[:len(full)/2]
		}
		return full[:len(full)-2]
	case 1:
		return "__kernel void process(__global image2d_t img, sampler_t smp) {\n  read_imagef(img, smp);\n}\n"
	default:
		return "__kernel void f(__global my_custom_struct_t* data) {\n  data[get_global_id(0)].field = 0;\n}\n"
	}
}

// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment; see DESIGN.md §4 for the index), plus ablation benches
// for the design choices DESIGN.md §5 calls out and micro-benchmarks of
// the substrates.
//
//	go test -bench=. -benchmem
package clgen_test

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"clgen/internal/clc"
	"clgen/internal/clsmith"
	"clgen/internal/corpus"
	"clgen/internal/driver"
	"clgen/internal/experiments"
	"clgen/internal/github"
	"clgen/internal/interp"
	"clgen/internal/model"
	"clgen/internal/nn"
	"clgen/internal/platform"
	"clgen/internal/rewriter"
	"clgen/internal/telemetry"
)

// TestMain persists a telemetry snapshot after benchmark runs: the
// stage-duration histograms and pipeline counters accumulated while the
// benches ran are written to BENCH_telemetry.json, giving future perf
// PRs a baseline trajectory to diff against. Plain `go test` runs (no
// -bench) skip the snapshot.
func TestMain(m *testing.M) {
	start := time.Now()
	code := m.Run()
	if f := flag.Lookup("test.bench"); code == 0 && f != nil && f.Value.String() != "" {
		if err := telemetry.WriteDefaultReport("bench", "BENCH_telemetry.json", start); err != nil {
			fmt.Fprintln(os.Stderr, "bench telemetry snapshot:", err)
		} else {
			fmt.Fprintln(os.Stderr, "bench telemetry snapshot written to BENCH_telemetry.json")
		}
	}
	os.Exit(code)
}

// --- shared world (built once; excluded from timings) ---

var (
	worldOnce sync.Once
	world     *experiments.World
	worldErr  error
)

func benchWorld(b *testing.B) *experiments.World {
	b.Helper()
	worldOnce.Do(func() {
		world, worldErr = experiments.BuildWorld(experiments.TestConfig())
	})
	if worldErr != nil {
		b.Fatalf("BuildWorld: %v", worldErr)
	}
	return world
}

// --- per-table / per-figure benches ---

// BenchmarkCorpusPipeline regenerates the §4.1 corpus statistics: mining,
// rejection filtering (with and without the shim), and code rewriting.
func BenchmarkCorpusPipeline(b *testing.B) {
	files := github.Mine(github.MinerConfig{Seed: 3, Repos: 30, FilesPerRepo: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := corpus.Build(files)
		if err != nil {
			b.Fatal(err)
		}
		if c.Stats.Kernels == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkTable1 regenerates the cross-suite performance grid.
func BenchmarkTable1(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 renders the benchmark-usage survey.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.RenderFigure2(experiments.Figure2()); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFigure3 regenerates the Parboil feature-space projection.
func BenchmarkFigure3(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the NPB ±synthetic evaluation.
func BenchmarkFigure7(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 regenerates the extended-model evaluation.
func BenchmarkFigure8(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 regenerates the feature-space match curves.
func BenchmarkFigure9(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(w, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuringTest regenerates the §6.1 judging experiment.
func BenchmarkTuringTest(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TuringTest(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollisions regenerates the Listing 2 collision analysis.
func BenchmarkCollisions(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Collisions(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesis measures end-to-end kernel synthesis throughput
// (sample → rejection filter → accept).
func BenchmarkSynthesis(b *testing.B) {
	w := benchWorld(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	accepted := 0
	for i := 0; i < b.N; i++ {
		k := w.CLgen.Model.SampleKernel(rng, model.SampleOpts{Seed: model.FreeSeed})
		if corpus.FilterSample(k).OK {
			accepted++
		}
	}
	b.ReportMetric(float64(accepted)/float64(b.N), "accepted/op")
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkAblationShim quantifies the shim header's effect on the
// rejection filter's discard rate (paper: 40% → 32%).
func BenchmarkAblationShim(b *testing.B) {
	files := github.Mine(github.MinerConfig{Seed: 5, Repos: 40, FilesPerRepo: 8})
	b.ResetTimer()
	var withShim, withoutShim int
	for i := 0; i < b.N; i++ {
		withShim, withoutShim = 0, 0
		for _, f := range files {
			if !corpus.Filter(f.Text, false).OK {
				withoutShim++
			}
			if !corpus.Filter(f.Text, true).OK {
				withShim++
			}
		}
	}
	b.ReportMetric(float64(withoutShim)/float64(len(files))*100, "discard%noshim")
	b.ReportMetric(float64(withShim)/float64(len(files))*100, "discard%shim")
}

// BenchmarkAblationRewriter quantifies the identifier rewriter's
// vocabulary reduction (paper: −84%).
func BenchmarkAblationRewriter(b *testing.B) {
	files := github.Mine(github.MinerConfig{Seed: 6, Repos: 40, FilesPerRepo: 8})
	b.ResetTimer()
	var red float64
	for i := 0; i < b.N; i++ {
		c, err := corpus.Build(files)
		if err != nil {
			b.Fatal(err)
		}
		red = c.Stats.VocabReduction()
	}
	b.ReportMetric(red*100, "vocab-reduction%")
}

// BenchmarkAblationNGramOrder sweeps the model order against the
// rejection-filter acceptance rate.
func BenchmarkAblationNGramOrder(b *testing.B) {
	w := benchWorld(b)
	for _, order := range []int{8, 16, 28} {
		b.Run(orderName(order), func(b *testing.B) {
			m, err := model.TrainNGram(w.CLgen.Corpus.Text, order)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			accepted := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := m.SampleKernel(rng, model.SampleOpts{Seed: model.FreeSeed})
				if corpus.FilterSample(k).OK {
					accepted++
				}
			}
			b.ReportMetric(float64(accepted)/float64(b.N)*100, "accept%")
		})
	}
}

func orderName(n int) string {
	return "order" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// BenchmarkAblationDynamicChecker measures how many filter-passing kernels
// the §5.2 dynamic checker additionally rejects.
func BenchmarkAblationDynamicChecker(b *testing.B) {
	w := benchWorld(b)
	kernels := w.Synth
	if len(kernels) > 20 {
		kernels = kernels[:20]
	}
	b.ResetTimer()
	var useful int
	for i := 0; i < b.N; i++ {
		useful = 0
		for _, src := range kernels {
			k, err := driver.Load(src)
			if err != nil {
				continue
			}
			if driver.Check(k, 512, 1, driver.RunConfig{}).OK() {
				useful++
			}
		}
	}
	b.ReportMetric(float64(useful)/float64(len(kernels))*100, "useful%")
}

// BenchmarkAblationBranchFeature compares feature-space collisions with
// and without the §8.2 branch feature.
func BenchmarkAblationBranchFeature(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	var r *experiments.CollisionResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Collisions(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.CollisionsNoBranch), "collisions")
	b.ReportMetric(float64(r.RemainingWithBranch), "with-branch")
}

// --- substrate micro-benchmarks ---

const benchKernel = `__kernel void A(__global float* a, __global float* b, const int c) {
  int d = get_global_id(0);
  if (d < c) {
    b[d] += 3.5f * a[d];
  }
}`

// BenchmarkFrontend measures preprocess+parse+check throughput — the
// rejection filter's hot path.
func BenchmarkFrontend(b *testing.B) {
	b.SetBytes(int64(len(benchKernel)))
	for i := 0; i < b.N; i++ {
		if res := corpus.FilterSample(benchKernel); !res.OK {
			b.Fatal(res.Reason)
		}
	}
}

// BenchmarkInterpSaxpy measures kernel execution throughput.
func BenchmarkInterpSaxpy(b *testing.B) {
	f, err := clc.Parse(benchKernel)
	if err != nil {
		b.Fatal(err)
	}
	if err := clc.Check(f); err != nil {
		b.Fatal(err)
	}
	env, err := interp.NewEnv(f)
	if err != nil {
		b.Fatal(err)
	}
	const n = 4096
	bufA := interp.NewBuffer(clc.Float, n, clc.Global)
	bufB := interp.NewBuffer(clc.Float, n, clc.Global)
	args := []interp.Value{
		interp.PtrValue(&interp.Pointer{Buf: bufA, Elem: clc.TypeFloat}),
		interp.PtrValue(&interp.Pointer{Buf: bufB, Elem: clc.TypeFloat}),
		interp.IntValue(clc.Int, n),
	}
	cfg := interp.RunConfig{GlobalSize: [3]int{n, 1, 1}, LocalSize: [3]int{64, 1, 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Run("A", args, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "workitems/op")
}

// BenchmarkRewriter measures normalization throughput.
func BenchmarkRewriter(b *testing.B) {
	src := github.KernelFile(rand.New(rand.NewSource(4)), false)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := rewriter.Normalize(src, corpus.ShimPreprocessor()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNGramSample measures raw model sampling throughput.
func BenchmarkNGramSample(b *testing.B) {
	w := benchWorld(b)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.CLgen.Model.SampleKernel(rng, model.SampleOpts{Seed: model.FreeSeed})
	}
}

// BenchmarkLSTMStep measures one forward step of a paper-shaped (scaled)
// LSTM.
func BenchmarkLSTMStep(b *testing.B) {
	m := nn.NewLSTM(96, 128, 2, rand.New(rand.NewSource(5)))
	st := m.ZeroState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(i%96, st)
	}
}

// BenchmarkCLSmith measures baseline-generator throughput.
func BenchmarkCLSmith(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < b.N; i++ {
		clsmith.Generate(rng)
	}
}

// BenchmarkPerfModel measures the analytic device model.
func BenchmarkPerfModel(b *testing.B) {
	w := platform.Workload{
		Profile: &interp.Profile{
			FloatOps: 1 << 20, GlobalLoads: 1 << 18, GlobalStores: 1 << 17,
			Branches: 1 << 14, Barriers: 1 << 10,
		},
		CoalescedFrac: 0.7, TransferBytes: 1 << 22, WorkItems: 1 << 16,
	}
	for i := 0; i < b.N; i++ {
		platform.SystemAMD.BestDevice(w)
	}
}

// BenchmarkAblationRewriterModelQuality compares the rejection-filter
// acceptance of models trained on rewritten vs raw (un-normalized) corpus
// text — the model-quality half of the §4.1 rewriter claim.
func BenchmarkAblationRewriterModelQuality(b *testing.B) {
	files := github.Mine(github.MinerConfig{Seed: 8, Repos: 50, FilesPerRepo: 8})
	c, err := corpus.Build(files)
	if err != nil {
		b.Fatal(err)
	}
	var raw strings.Builder
	for _, f := range files {
		if corpus.Filter(f.Text, true).OK {
			raw.WriteString(f.Text)
			raw.WriteString("\n")
		}
	}
	for _, variant := range []struct {
		name string
		text string
	}{
		{"rewritten", c.Text},
		{"raw", raw.String()},
	} {
		b.Run(variant.name, func(b *testing.B) {
			m, err := model.TrainNGram(variant.text, 0)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			accepted := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := m.SampleKernel(rng, model.SampleOpts{Seed: model.FreeSeed})
				if corpus.FilterSample(k).OK {
					accepted++
				}
			}
			b.ReportMetric(float64(accepted)/float64(b.N)*100, "accept%")
		})
	}
}

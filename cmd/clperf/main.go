// Command clperf manages the per-stage perf run history the pipeline
// binaries append with -perf-history (see internal/perf): it records new
// profiles from RunReport JSON files, prints the per-stage trajectory,
// and gates noise-aware perf regressions in CI.
//
// Usage:
//
//	clperf record [-history H] [-component C] report.json
//	    Flatten a RunReport's stage tree into per-stage totals, stamp it
//	    with the machine (GOMAXPROCS, NumCPU, go version) and git
//	    revision, and append it to the JSONL history (default
//	    PERF_HISTORY.jsonl).
//
//	clperf history [-stage S] H
//	    Print the run trajectory, one row per recorded run.
//
//	clperf diff [-threshold pct] [-min-seconds s] H
//	    Gate the newest record against the median of earlier runs from
//	    the same component AND the same machine stamp. A stage regresses
//	    only when it exceeds the baseline by both the relative threshold
//	    (default 75%) and the absolute floor (default 0.1s) — so short
//	    noisy stages don't flap the gate. Exits 1 on regression, 0 when
//	    clean or when no comparable baseline exists yet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"clgen/internal/perf"
	"clgen/internal/telemetry"
)

// defaultHistory is where bench-snapshot and CI keep the run history.
const defaultHistory = "PERF_HISTORY.jsonl"

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "history":
		err = history(os.Args[2:])
	case "diff":
		var regressed bool
		regressed, err = diff(os.Args[2:])
		if err == nil && regressed {
			os.Exit(1)
		}
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "clperf: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "clperf:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  clperf record  [-history H] [-component C] <report.json>
  clperf history [-stage S] <history.jsonl>
  clperf diff    [-threshold pct] [-min-seconds s] <history.jsonl>`)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	historyPath := fs.String("history", defaultHistory, "JSONL history to append to")
	component := fs.String("component", "", "override the report's component name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("record needs exactly one RunReport JSON path")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var rep telemetry.RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("parse report %s: %w", fs.Arg(0), err)
	}
	if *component != "" {
		rep.Component = *component
	}
	rec := perf.BuildRecord(&rep, perf.GitRev())
	if err := perf.Append(*historyPath, rec); err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d stage(s), %.3fs total -> %s\n",
		rec.Component, len(rec.Stages), rec.Seconds, *historyPath)
	return nil
}

func history(args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	stage := fs.String("stage", "", "show only this stage's trajectory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("history needs exactly one history path")
	}
	recs, err := perf.ReadHistory(fs.Arg(0))
	if err != nil {
		return err
	}
	perf.RenderHistory(os.Stdout, recs, *stage)
	return nil
}

func diff(args []string) (bool, error) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", perf.DefaultThresholdPct,
		"relative regression threshold in percent")
	minSeconds := fs.Float64("min-seconds", perf.DefaultMinSeconds,
		"absolute regression floor in seconds (both must be exceeded)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 1 {
		return false, fmt.Errorf("diff needs exactly one history path")
	}
	recs, err := perf.ReadHistory(fs.Arg(0))
	if err != nil {
		return false, err
	}
	rep, err := perf.Diff(recs, *threshold, *minSeconds)
	if err != nil {
		return false, err
	}
	rep.Render(os.Stdout)
	return rep.Regressions > 0, nil
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// checkGolden compares got against testdata/name, regenerating the file
// when UPDATE_GOLDEN is set (the repo-wide golden convention).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// lintTestSrc exercises every SARIF level: an Error (buffer-overrun via
// the strided store), a Warn (unused kernel argument), and clean code.
const lintTestSrc = `
__kernel void stride(__global int* a) {
    int gid = get_global_id(0);
    a[2 * gid] = gid;
}

__kernel void map(__global const float* in, __global float* out, __global float* dead) {
    int gid = get_global_id(0);
    out[gid] = in[gid] * 2.0f;
}
`

// TestSarifGolden pins the SARIF 2.1.0 envelope: schema/version header,
// tool.driver with the sorted rule table, and one result per diagnostic
// with level and region.
func TestSarifGolden(t *testing.T) {
	var buf bytes.Buffer
	p := newPrinter(&buf, "sarif", false)
	if failed := lintSource(p, "test.cl", lintTestSrc, true); !failed {
		t.Fatal("expected the strided kernel to produce an Error diagnostic")
	}
	if err := p.flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sarif.golden", buf.String())
}

// TestSarifEmpty checks a clean input still yields a well-formed
// document (runs[0].results must be [] rather than null).
func TestSarifEmpty(t *testing.T) {
	var buf bytes.Buffer
	p := newPrinter(&buf, "sarif", false)
	if err := p.flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"results": []`)) {
		t.Errorf("empty SARIF document lacks an empty results array:\n%s", buf.String())
	}
}

// TestFootprintsGolden pins -footprints text output: per-kernel symbolic
// extents with written/overrun markers, kernels in name order.
func TestFootprintsGolden(t *testing.T) {
	var buf bytes.Buffer
	p := newPrinter(&buf, "text", true)
	lintSource(p, "test.cl", lintTestSrc, true)
	checkGolden(t, "footprints.golden", buf.String())
}

// SARIF 2.1.0 output (-format sarif): the minimal static-analysis
// interchange envelope — one run, one tool.driver, one result per
// diagnostic — so cllint findings load into SARIF consumers (code
// scanning UIs, IDE problem panes) without an adapter.
package main

import (
	"encoding/json"
	"io"
	"sort"

	"clgen/internal/analysis"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version,omitempty"`
	Rules   []sarifRule `json:"rules,omitempty"`
}

type sarifRule struct {
	ID string `json:"id"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLevel maps a diagnostic severity onto the three SARIF levels.
func sarifLevel(s analysis.Severity) string {
	switch s {
	case analysis.Error:
		return "error"
	case analysis.Warn:
		return "warning"
	}
	return "note"
}

// sarifResultFor renders one diagnostic. A zero line (front-end failures
// carry no position) omits the region, which SARIF permits.
func sarifResultFor(uri, lint, level, msg string, line, col int) sarifResult {
	res := sarifResult{
		RuleID:  lint,
		Level:   level,
		Message: sarifMessage{Text: msg},
	}
	loc := sarifLocation{PhysicalLocation: sarifPhysical{
		ArtifactLocation: sarifArtifact{URI: uri},
	}}
	if line > 0 {
		loc.PhysicalLocation.Region = &sarifRegion{StartLine: line, StartColumn: col}
	}
	res.Locations = []sarifLocation{loc}
	return res
}

// writeSarif assembles and emits the document: results in emission
// order, the rule table sorted by ID (deterministic, golden-diffable).
func writeSarif(w io.Writer, results []sarifResult) error {
	ruleSet := map[string]bool{}
	for _, r := range results {
		ruleSet[r.RuleID] = true
	}
	rules := make([]sarifRule, 0, len(ruleSet))
	for id := range ruleSet {
		rules = append(rules, sarifRule{ID: id})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	if results == nil {
		results = []sarifResult{}
	}
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name: "cllint", Version: analysis.Version, Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Command cllint runs the internal/analysis static analyzer (CFG +
// dataflow over the internal/clc AST) on OpenCL sources and prints
// file/line diagnostics, one per line:
//
//	file.cl:12:5: warning: [unused-arg] A: kernel argument b is never used
//
// Usage:
//
//	cllint file.cl [file2.cl ...]   lint the named files
//	cllint                          lint stdin
//	cllint -suites                  lint the seven built-in benchmark
//	                                suites (regression baseline; output
//	                                is deterministic and golden-diffable)
//
// Exit status is 0 when no Error-severity diagnostic was found, 1 when
// at least one input has an Error diagnostic or fails to parse, and 2
// on usage or I/O failure. Error-severity diagnostics are the ones the
// strict corpus filter (-static-checks) rejects on.
//
// cllint shares the observability flags of the other binaries (-v,
// -report, -perf, -perf-history, ...); -quiet both lowers the log level
// and suppresses the per-input summary on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clgen/internal/analysis"
	"clgen/internal/clc"
	"clgen/internal/corpus"
	_ "clgen/internal/perf" // -perf/-stall-timeout/-perf-history backend
	"clgen/internal/suites"
	"clgen/internal/telemetry"
)

func main() {
	var (
		suitesMode = flag.Bool("suites", false, "lint the built-in benchmark suites instead of files")
	)
	tf := telemetry.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	rt, err := tf.Start("cllint")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cllint:", err)
		os.Exit(2)
	}

	var failed bool
	if *suitesMode {
		failed = lintSuites(tf.Quiet)
	} else {
		failed, err = lintFiles(flag.Args(), tf.Quiet)
	}
	rt.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cllint:", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// lintFiles analyzes each named file (stdin when none) and reports
// whether any input produced an Error diagnostic or failed to parse.
func lintFiles(paths []string, quiet bool) (failed bool, err error) {
	if len(paths) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return false, err
		}
		return lintSource("<stdin>", string(src), quiet), nil
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return failed, err
		}
		if lintSource(path, string(src), quiet) {
			failed = true
		}
	}
	return failed, nil
}

// lintSource preprocesses, parses, checks and analyzes one translation
// unit. The shim preprocessor serves the same header set the corpus
// filter uses, so cllint sees kernels exactly as the pipeline does.
func lintSource(prefix, src string, quiet bool) (failed bool) {
	expanded, err := corpus.ShimPreprocessor().Preprocess(src)
	if err != nil {
		fmt.Printf("%s: preprocess error: %v\n", prefix, err)
		return true
	}
	f, err := clc.Parse(expanded)
	if err != nil {
		fmt.Printf("%s: parse error: %v\n", prefix, err)
		return true
	}
	if err := clc.Check(f); err != nil {
		fmt.Printf("%s: check error: %v\n", prefix, err)
		return true
	}
	rep := analysis.Analyze(f)
	fmt.Print(rep.Render(prefix))
	if !quiet {
		fmt.Fprintf(os.Stderr, "%s: %d diagnostics, %d errors\n",
			prefix, len(rep.Diags), len(rep.Errors()))
	}
	return rep.HasErrors()
}

// lintSuites analyzes every built-in benchmark, prefixing diagnostics
// with the benchmark ID. Suite sources are pre-expanded, so they parse
// without the preprocessor; any diagnostic here is a candidate false
// positive and is golden-checked in CI (make lint-suites).
func lintSuites(quiet bool) (failed bool) {
	flagged, errors := 0, 0
	for _, b := range suites.All() {
		f, err := clc.Parse(b.Src)
		if err != nil {
			fmt.Printf("%s: parse error: %v\n", b.ID(), err)
			failed = true
			continue
		}
		if err := clc.Check(f); err != nil {
			fmt.Printf("%s: check error: %v\n", b.ID(), err)
			failed = true
			continue
		}
		rep := analysis.Analyze(f)
		fmt.Print(rep.Render(b.ID()))
		if len(rep.Diags) > 0 {
			flagged++
		}
		if rep.HasErrors() {
			errors++
			failed = true
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "suites: %d benchmarks flagged, %d with errors\n", flagged, errors)
	}
	return failed
}

// Command cllint runs the internal/analysis static analyzer (CFG +
// dataflow over the internal/clc AST) on OpenCL sources and prints
// file/line diagnostics, one per line:
//
//	file.cl:12:5: warning: [unused-arg] A: kernel argument b is never used
//
// Usage:
//
//	cllint file.cl [file2.cl ...]   lint the named files
//	cllint                          lint stdin
//	cllint -suites                  lint the seven built-in benchmark
//	                                suites (regression baseline; output
//	                                is deterministic and golden-diffable)
//	cllint -format json ...         emit diagnostics as JSON lines
//	                                (file, line, col, lint, severity, msg);
//	                                -json is a shorthand
//	cllint -format sarif ...        emit one SARIF 2.1.0 document
//	cllint -footprints ...          also print each kernel's proven
//	                                per-pointer-argument access footprints
//	                                (symbolic extents affine in G)
//
// Identical diagnostics at the same position (same file, line, column,
// lint, severity, and message) are deduplicated before printing, in
// both output formats.
//
// Exit status is 0 when no Error-severity diagnostic was found, 1 when
// at least one input has an Error diagnostic or fails to parse, and 2
// on usage or I/O failure. Error-severity diagnostics are the ones the
// strict corpus filter (-static-checks) rejects on.
//
// cllint shares the observability flags of the other binaries (-v,
// -report, -perf, -perf-history, ...); -quiet both lowers the log level
// and suppresses the per-input summary on stderr. -precise-features has
// no effect on lint output (diagnostics come from the analyzer either
// way) but is accepted for flag parity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"clgen/internal/analysis"
	"clgen/internal/clc"
	"clgen/internal/corpus"
	_ "clgen/internal/features" // -precise-features backend
	_ "clgen/internal/perf"     // -perf/-stall-timeout/-perf-history backend
	"clgen/internal/suites"
	"clgen/internal/telemetry"
)

func main() {
	var (
		suitesMode = flag.Bool("suites", false, "lint the built-in benchmark suites instead of files")
		jsonMode   = flag.Bool("json", false, "shorthand for -format json")
		format     = flag.String("format", "text", "output format: text, json, or sarif")
		footprints = flag.Bool("footprints", false, "print per-kernel pointer-argument access footprints")
	)
	tf := telemetry.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if *jsonMode && *format == "text" {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "cllint: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	rt, err := tf.Start("cllint")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cllint:", err)
		os.Exit(2)
	}

	p := newPrinter(os.Stdout, *format, *footprints)
	var failed bool
	if *suitesMode {
		failed = lintSuites(p, tf.Quiet)
	} else {
		failed, err = lintFiles(p, flag.Args(), tf.Quiet)
	}
	if ferr := p.flush(); err == nil {
		err = ferr
	}
	rt.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cllint:", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// diagJSON is the -json wire format: one object per diagnostic, one per
// line, stable field names.
type diagJSON struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Severity  string `json:"severity"`
	Lint      string `json:"lint"`
	Fn        string `json:"fn,omitempty"`
	Kernel    bool   `json:"kernel,omitempty"`
	Msg       string `json:"msg"`
	Predicted string `json:"predicted,omitempty"`
}

// footprintJSON is the -footprints wire format under -format json: one
// object per kernel, one per line.
type footprintJSON struct {
	File       string         `json:"file"`
	Kernel     string         `json:"kernel"`
	Footprints []footprintArg `json:"footprints"`
}

type footprintArg struct {
	Arg     int    `json:"arg"`
	Name    string `json:"name"`
	Extent  string `json:"extent"`
	Known   bool   `json:"known"`
	Written bool   `json:"written,omitempty"`
	Overrun bool   `json:"overrun,omitempty"`
}

// printer renders diagnostics in the selected format, deduplicating
// identical diagnostics at the same position (analyzing a file and then
// a unit split from it, or repeated helper inlining, can repeat one).
// SARIF output buffers results and emits one document on flush.
type printer struct {
	out        io.Writer
	format     string // "text", "json", or "sarif"
	footprints bool
	seen       map[string]bool
	sarif      []sarifResult
}

func newPrinter(out io.Writer, format string, footprints bool) *printer {
	return &printer{out: out, format: format, footprints: footprints, seen: map[string]bool{}}
}

// input resets the dedup scope: diagnostics dedup within one input, not
// across files (the same line/col/message in two files is two findings).
func (p *printer) input() { p.seen = map[string]bool{} }

func (p *printer) diag(prefix string, d analysis.Diagnostic) {
	key := fmt.Sprintf("%d:%d:%s:%d:%s:%s", d.Pos.Line, d.Pos.Col, d.Lint, d.Severity, d.Fn, d.Msg)
	if p.seen[key] {
		return
	}
	p.seen[key] = true
	switch p.format {
	case "json":
		enc := json.NewEncoder(p.out)
		enc.Encode(diagJSON{
			File: prefix, Line: d.Pos.Line, Col: d.Pos.Col,
			Severity: d.Severity.String(), Lint: d.Lint,
			Fn: d.Fn, Kernel: d.Kernel, Msg: d.Msg, Predicted: d.Predicted,
		})
	case "sarif":
		p.sarif = append(p.sarif, sarifResultFor(prefix, d.Lint,
			sarifLevel(d.Severity), d.Msg, d.Pos.Line, d.Pos.Col))
	default:
		fmt.Fprintln(p.out, analysis.FormatDiagnostic(prefix, d))
	}
}

// fail reports an input that did not survive the front end (preprocess,
// parse, or check); rendered as a diagnostic so machine formats stay
// valid.
func (p *printer) fail(prefix, lint string, err error) {
	switch p.format {
	case "json":
		json.NewEncoder(p.out).Encode(diagJSON{
			File: prefix, Severity: "error", Lint: lint, Msg: err.Error(),
		})
	case "sarif":
		p.sarif = append(p.sarif, sarifResultFor(prefix, lint, "error", err.Error(), 0, 0))
	default:
		fmt.Fprintf(p.out, "%s: %s: %v\n", prefix, lint, err)
	}
}

func (p *printer) report(prefix string, rep *analysis.Report) {
	p.input()
	for _, d := range rep.Diags {
		p.diag(prefix, d)
	}
	if p.footprints {
		p.foot(prefix, rep)
	}
}

// foot prints the per-kernel pointer-argument footprints (-footprints),
// kernels in name order. SARIF carries findings only, so footprints are
// skipped there.
func (p *printer) foot(prefix string, rep *analysis.Report) {
	if p.format == "sarif" {
		return
	}
	names := make([]string, 0, len(rep.Footprints))
	for name := range rep.Footprints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fps := rep.Footprints[name]
		if p.format == "json" {
			fj := footprintJSON{File: prefix, Kernel: name, Footprints: []footprintArg{}}
			for _, f := range fps {
				fj.Footprints = append(fj.Footprints, footprintArg{
					Arg: f.Arg, Name: f.Name, Extent: f.String(),
					Known: f.Known(), Written: f.Written, Overrun: f.Overrun,
				})
			}
			json.NewEncoder(p.out).Encode(fj)
			continue
		}
		fmt.Fprintf(p.out, "%s: kernel %s footprints:\n", prefix, name)
		for _, f := range fps {
			marks := ""
			if f.Written {
				marks += " written"
			}
			if f.Overrun {
				marks += " overrun"
			}
			fmt.Fprintf(p.out, "  arg %d %s: %s%s\n", f.Arg, f.Name, f.String(), marks)
		}
	}
}

// flush completes document-oriented formats; line-oriented formats have
// already written everything.
func (p *printer) flush() error {
	if p.format != "sarif" {
		return nil
	}
	return writeSarif(p.out, p.sarif)
}

// lintFiles analyzes each named file (stdin when none) and reports
// whether any input produced an Error diagnostic or failed to parse.
func lintFiles(p *printer, paths []string, quiet bool) (failed bool, err error) {
	if len(paths) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return false, err
		}
		return lintSource(p, "<stdin>", string(src), quiet), nil
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return failed, err
		}
		if lintSource(p, path, string(src), quiet) {
			failed = true
		}
	}
	return failed, nil
}

// lintSource preprocesses, parses, checks and analyzes one translation
// unit. The shim preprocessor serves the same header set the corpus
// filter uses, so cllint sees kernels exactly as the pipeline does.
func lintSource(p *printer, prefix, src string, quiet bool) (failed bool) {
	expanded, err := corpus.ShimPreprocessor().Preprocess(src)
	if err != nil {
		p.fail(prefix, "preprocess error", err)
		return true
	}
	f, err := clc.Parse(expanded)
	if err != nil {
		p.fail(prefix, "parse error", err)
		return true
	}
	if err := clc.Check(f); err != nil {
		p.fail(prefix, "check error", err)
		return true
	}
	rep := analysis.Analyze(f)
	p.report(prefix, rep)
	if !quiet {
		fmt.Fprintf(os.Stderr, "%s: %d diagnostics, %d errors\n",
			prefix, len(rep.Diags), len(rep.Errors()))
	}
	return rep.HasErrors()
}

// lintSuites analyzes every built-in benchmark, prefixing diagnostics
// with the benchmark ID. Suite sources are pre-expanded, so they parse
// without the preprocessor; any diagnostic here is a candidate false
// positive and is golden-checked in CI (make lint-suites).
func lintSuites(p *printer, quiet bool) (failed bool) {
	flagged, errors := 0, 0
	for _, b := range suites.All() {
		f, err := clc.Parse(b.Src)
		if err != nil {
			p.fail(b.ID(), "parse error", err)
			failed = true
			continue
		}
		if err := clc.Check(f); err != nil {
			p.fail(b.ID(), "check error", err)
			failed = true
			continue
		}
		rep := analysis.Analyze(f)
		p.report(b.ID(), rep)
		if len(rep.Diags) > 0 {
			flagged++
		}
		if rep.HasErrors() {
			errors++
			failed = true
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "suites: %d benchmarks flagged, %d with errors\n", flagged, errors)
	}
	return failed
}

// Command clexp regenerates the paper's tables and figures (see DESIGN.md
// for the experiment index).
//
// Usage:
//
//	clexp -run all
//	clexp -run table1,fig7,fig8
//	clexp -run fig9 -kernels 2000
//	clexp -scale test -run all     (fast, reduced sizes)
//
// Observability and concurrency (shared across clgen/clexp/cldrive):
//
//	clexp -v                       debug logging
//	clexp -quiet                   warnings and errors only
//	clexp -metrics-addr :9090      live /metrics, /vars, /stages, /debug/pprof/
//	clexp -report run.json         machine-readable RunReport on exit
//	clexp -journal run.jsonl       per-artifact provenance journal (cltrace)
//	clexp -perf                    per-stage CPU/alloc/GC accounting
//	clexp -stall-timeout 30s       stall watchdog + flight-recorder dump
//	clexp -perf-history h.jsonl    append per-stage run profile (clperf)
//	clexp -workers N               worker-pool size (default GOMAXPROCS);
//	                               outputs are identical for every N
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clgen/internal/experiments"
	_ "clgen/internal/perf" // -perf/-stall-timeout/-perf-history backend
	"clgen/internal/pool"
	"clgen/internal/telemetry"
)

var experimentOrder = []string{
	"corpus", "table1", "table2", "table3", "table4",
	"fig2", "fig3", "fig7", "fig8", "fig9", "turing", "collisions",
}

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiments: "+strings.Join(experimentOrder, ","))
		scale   = flag.String("scale", "full", "test | full")
		seed    = flag.Int64("seed", 1, "campaign seed")
		kernels = flag.Int("kernels", 2000, "figure 9 kernel pool size")
	)
	tf := telemetry.RegisterCLIFlags(flag.CommandLine)
	pool.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	rt, err := tf.Start("clexp")
	if err != nil {
		fatal(err)
	}
	err = campaign(rt, *run, *scale, *seed, *kernels, tf.StaticChecks)
	// Close before exiting so the run summary and -report are written
	// even when an experiment failed partway.
	if cerr := rt.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
}

func campaign(rt *telemetry.Runtime, run, scale string, seed int64, kernels int, static bool) error {
	want := map[string]bool{}
	if run == "all" {
		for _, e := range experimentOrder {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(run, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	// Descriptive tables need no world.
	section := func(name, body string) {
		fmt.Printf("==== %s ====\n%s\n", name, body)
	}
	if want["table2"] {
		section("Table 2: model features", experiments.RenderTable2())
	}
	if want["table3"] {
		section("Table 3: benchmarks", experiments.RenderTable3())
	}
	if want["table4"] {
		section("Table 4: platforms", experiments.RenderTable4())
	}
	if want["fig2"] {
		section("Figure 2: benchmark usage survey", experiments.RenderFigure2(experiments.Figure2()))
	}

	needWorld := want["corpus"] || want["table1"] || want["fig3"] || want["fig7"] ||
		want["fig8"] || want["fig9"] || want["turing"] || want["collisions"]
	if !needWorld {
		return nil
	}

	cfg := experiments.Config{Seed: seed}
	if scale == "test" {
		cfg = experiments.TestConfig()
	}
	cfg.StaticChecks = static
	// Progress goes through the structured logger; -quiet already raised
	// the logger level, so the config hook stays active either way.
	cfg.Quiet = false
	cfg.Log = rt.Log.Logf
	w, err := experiments.BuildWorld(cfg)
	if err != nil {
		return err
	}

	if want["corpus"] {
		section("§4.1 corpus statistics", experiments.RenderCorpusStats(experiments.CorpusStats(w)))
	}
	if want["table1"] {
		r, err := experiments.Table1(w)
		if err != nil {
			return err
		}
		section("Table 1: cross-suite performance (AMD)", r.Render())
	}
	if want["fig3"] {
		r, err := experiments.Figure3(w)
		if err != nil {
			return err
		}
		section("Figure 3: Parboil feature space (NVIDIA)", r.Render())
	}
	if want["fig7"] {
		r, err := experiments.Figure7(w)
		if err != nil {
			return err
		}
		section("Figure 7: Grewe model ± CLgen on NPB", r.Render())
	}
	if want["fig8"] {
		r, err := experiments.Figure8(w)
		if err != nil {
			return err
		}
		section("Figure 8: extended model over all suites", r.Render())
	}
	if want["fig9"] {
		r, err := experiments.Figure9(w, kernels)
		if err != nil {
			return err
		}
		section("Figure 9: feature-space matches", r.Render())
	}
	if want["turing"] {
		r, err := experiments.TuringTest(w)
		if err != nil {
			return err
		}
		section("§6.1 human-or-machine test", r.Render())
	}
	if want["collisions"] {
		r, err := experiments.Collisions(w)
		if err != nil {
			return err
		}
		section("Listing 2: feature collisions", r.Render())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clexp:", err)
	os.Exit(1)
}

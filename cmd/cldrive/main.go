// Command cldrive is the host driver's command-line interface (§5): it
// reads an OpenCL kernel, generates rule-based payloads, executes it on
// the simulated device, applies the four-execution dynamic checker, and
// reports modeled runtimes on both Table 4 systems.
//
// Usage:
//
//	cldrive [-size N] [-seed S] [file.cl]   (reads stdin without a file)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clgen/internal/driver"
	"clgen/internal/platform"
)

func main() {
	var (
		size = flag.Int("size", 65536, "global size (elements)")
		seed = flag.Int64("seed", 1, "payload seed")
		cap  = flag.Int("cap", 16384, "execution-size cap (0 = run full size)")
	)
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}

	k, err := driver.Load(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kernel: %s\n", k.Name)
	fmt.Printf("static features: comp=%d mem=%d localmem=%d coalesced=%d branches=%d\n",
		k.Static.Comp, k.Static.Mem, k.Static.LocalMem, k.Static.Coalesced, k.Static.Branches)

	res := driver.Check(k, min(*size, nonZero(*cap, *size)), *seed, driver.RunConfig{})
	fmt.Printf("dynamic checker: %s\n", res.Verdict)
	if !res.OK() {
		if res.Err != nil {
			fmt.Printf("  cause: %v\n", res.Err)
		}
		os.Exit(2)
	}

	for _, sys := range []*platform.System{platform.SystemAMD, platform.SystemNVIDIA} {
		m, err := driver.Measure(k, *size, sys, *seed, driver.MeasureConfig{ExecCap: *cap})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s system: cpu=%.3fms gpu=%.3fms -> %s (%.2fx) transfer=%dB wgsize=%d\n",
			sys.Name, m.CPUTime*1e3, m.GPUTime*1e3, m.Oracle, m.Speedup(),
			m.Vector.Transfer, m.Vector.WgSize)
	}
}

func nonZero(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cldrive:", err)
	os.Exit(1)
}

// Command cldrive is the host driver's command-line interface (§5): it
// reads an OpenCL kernel, generates rule-based payloads, executes it on
// the simulated device, applies the four-execution dynamic checker, and
// reports modeled runtimes on both Table 4 systems.
//
// Usage:
//
//	cldrive [-size N] [-seed S] [file.cl]   (reads stdin without a file)
//
// Observability and concurrency (shared across clgen/clexp/cldrive):
//
//	cldrive -v                     debug logging
//	cldrive -quiet                 warnings and errors only
//	cldrive -metrics-addr :9090    live /metrics, /vars, /stages, /debug/pprof/
//	cldrive -report run.json       machine-readable RunReport on exit
//	cldrive -journal run.jsonl     per-artifact provenance journal (cltrace)
//	cldrive -perf                  per-stage CPU/alloc/GC accounting
//	cldrive -stall-timeout 30s     stall watchdog + flight-recorder dump
//	cldrive -perf-history h.jsonl  append per-stage run profile (clperf)
//	cldrive -workers N             worker-pool size (default GOMAXPROCS);
//	                               outputs are identical for every N
//	cldrive -static-checks         pre-screen with the static analyzer;
//	                               statically rejected kernels skip the
//	                               four dynamic checker executions
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clgen/internal/driver"
	"clgen/internal/journal"
	_ "clgen/internal/perf" // -perf/-stall-timeout/-perf-history backend
	"clgen/internal/platform"
	"clgen/internal/pool"
	"clgen/internal/telemetry"
)

func main() {
	var (
		size = flag.Int("size", 65536, "global size (elements)")
		seed = flag.Int64("seed", 1, "payload seed")
		cap  = flag.Int("cap", 16384, "execution-size cap (0 = run full size)")
	)
	tf := telemetry.RegisterCLIFlags(flag.CommandLine)
	pool.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	rt, err := tf.Start("cldrive")
	if err != nil {
		fatal(err)
	}

	code := 0
	err = drive(rt, *size, *seed, *cap, tf.StaticChecks, flag.Args())
	if err == errCheckerRejected {
		code = 2
		err = nil
	}
	if cerr := rt.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	os.Exit(code)
}

// errCheckerRejected distinguishes the exit-2 path (kernel failed the
// dynamic checker) from hard failures.
var errCheckerRejected = fmt.Errorf("kernel rejected by the dynamic checker")

func drive(rt *telemetry.Runtime, size int, seed int64, cap int, static bool, args []string) error {
	var src []byte
	var err error
	if len(args) > 0 {
		src, err = os.ReadFile(args[0])
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}

	span := telemetry.Start("cldrive.run")
	defer span.End()
	k, err := driver.Load(string(src))
	if err != nil {
		if journal.Enabled() {
			journal.Emit(journal.Event{ID: journal.ID(string(src)),
				Stage: journal.StageDriverLoad, Reason: err.Error()})
		}
		return err
	}
	if journal.Enabled() {
		journal.Emit(journal.Event{ID: journal.ID(string(src)), Stage: journal.StageDriverLoad})
	}
	span.SetAttr("kernel", k.Name)
	fmt.Printf("kernel: %s\n", k.Name)
	fmt.Printf("static features: comp=%d mem=%d localmem=%d coalesced=%d branches=%d\n",
		k.Static.Comp, k.Static.Mem, k.Static.LocalMem, k.Static.Coalesced, k.Static.Branches)

	mode := driver.StaticOff
	if static {
		mode = driver.StaticPreScreen
	}
	res := driver.Check(k, min(size, nonZero(cap, size)), seed, driver.RunConfig{Static: mode})
	if res.Static {
		fmt.Printf("dynamic checker: %s (static pre-screen, not executed)\n", res.Verdict)
	} else {
		fmt.Printf("dynamic checker: %s\n", res.Verdict)
	}
	if !res.OK() {
		if res.Err != nil {
			fmt.Printf("  cause: %v\n", res.Err)
		}
		if f := res.Fault; f != nil {
			culprit := "anonymous buffer"
			if f.Arg >= 0 && f.Arg < len(k.Decl.Params) {
				culprit = fmt.Sprintf("argument %d (%s)", f.Arg, k.Decl.Params[f.Arg].Name)
			}
			op := "read"
			if f.Write {
				op = "write"
			}
			fmt.Printf("  fault: %s %s slot %d of %d\n", culprit, op, f.Slot, f.Len)
		}
		rt.Log.Warn("kernel rejected", "kernel", k.Name, "verdict", string(res.Verdict))
		return errCheckerRejected
	}

	// The two systems are independent: measure them concurrently under
	// explicit child spans (workers spawn goroutines, so implicit span
	// parenting would race) and print in system order.
	systems := []*platform.System{platform.SystemAMD, platform.SystemNVIDIA}
	type outcome struct {
		m   *driver.Measurement
		err error
	}
	results := pool.Map(0, len(systems), func(i int) outcome {
		sys := systems[i]
		child := span.Child("measure." + sys.Name)
		defer child.End()
		m, err := driver.Measure(k, size, sys, seed, driver.MeasureConfig{ExecCap: cap})
		return outcome{m: m, err: err}
	})
	for i, o := range results {
		if o.err != nil {
			return o.err
		}
		m := o.m
		if journal.Enabled() {
			journal.Emit(journal.Event{ID: journal.ID(string(src)), Stage: journal.StageMeasured,
				Kernel: k.Name, System: systems[i].Name, Size: m.GlobalSize,
				CPUms: m.CPUTime * 1e3, GPUms: m.GPUTime * 1e3, Oracle: m.Oracle.String()})
		}
		fmt.Printf("%s system: cpu=%.3fms gpu=%.3fms -> %s (%.2fx) transfer=%dB wgsize=%d\n",
			systems[i].Name, m.CPUTime*1e3, m.GPUTime*1e3, m.Oracle, m.Speedup(),
			m.Vector.Transfer, m.Vector.WgSize)
	}
	return nil
}

func nonZero(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cldrive:", err)
	os.Exit(1)
}

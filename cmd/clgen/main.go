// Command clgen is the benchmark synthesizer's command-line interface:
// it mines the (synthetic) GitHub dataset, builds the language corpus,
// trains a character-level model, and samples OpenCL kernels that pass the
// rejection filter (Figure 4, left half).
//
// Usage:
//
//	clgen -mode corpus [-repos N] [-seed S]
//	clgen -mode train  [-model FILE] [-backend ngram|lstm] [-repos N]
//	clgen -mode sample [-n N] [-model FILE] [-repos N] [-seed S] [-temp T] [-free]
//	clgen -mode stats  [-repos N] [-seed S]
//
// Observability and concurrency (shared across clgen/clexp/cldrive):
//
//	clgen -v                       debug logging
//	clgen -quiet                   warnings and errors only
//	clgen -metrics-addr :9090      live /metrics, /vars, /stages, /debug/pprof/
//	clgen -report run.json         machine-readable RunReport on exit
//	clgen -journal run.jsonl       per-artifact provenance journal (cltrace)
//	clgen -perf                    per-stage CPU/alloc/GC accounting
//	clgen -stall-timeout 30s       stall watchdog + flight-recorder dump
//	clgen -perf-history h.jsonl    append per-stage run profile (clperf)
//	clgen -cache-dir DIR           persist content-addressed stage caches;
//	                               warm runs reuse filter/rewrite/feature/
//	                               check results (outputs stay identical)
//	clgen -workers N               worker-pool size (default GOMAXPROCS);
//	                               outputs are identical for every N
package main

import (
	"flag"
	"fmt"
	"os"

	"clgen/internal/core"
	"clgen/internal/corpus"
	"clgen/internal/experiments"
	"clgen/internal/github"
	"clgen/internal/model"
	"clgen/internal/nn"
	_ "clgen/internal/perf" // -perf/-stall-timeout/-perf-history backend
	"clgen/internal/pool"
	"clgen/internal/telemetry"
)

func main() {
	var (
		mode    = flag.String("mode", "sample", "corpus | train | sample | stats")
		modelF  = flag.String("model", "", "model file to write (train) or read (sample)")
		repos   = flag.Int("repos", 100, "repositories to mine")
		seed    = flag.Int64("seed", 1, "random seed")
		n       = flag.Int("n", 10, "kernels to synthesize")
		temp    = flag.Float64("temp", 0.9, "sampling temperature")
		backend = flag.String("backend", "ngram", "language-model backend: ngram | lstm")
		free    = flag.Bool("free", true, "free-signature sampling (§4.3 mode 2)")
		order   = flag.Int("order", 0, "n-gram order (0 = tuned default)")
		hidden  = flag.Int("hidden", 128, "LSTM hidden units")
		layers  = flag.Int("layers", 2, "LSTM layers")
		epochs  = flag.Int("epochs", 8, "LSTM training epochs")
	)
	tf := telemetry.RegisterCLIFlags(flag.CommandLine)
	pool.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	rt, err := tf.Start("clgen")
	if err != nil {
		fatal(err)
	}

	err = synthesizer(rt, *mode, *modelF, *repos, *seed, *n, *temp, *backend,
		*free, *order, *hidden, *layers, *epochs, tf.StaticChecks)
	if cerr := rt.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
}

func synthesizer(rt *telemetry.Runtime, mode, modelF string, repos int, seed int64,
	n int, temp float64, backend string, free bool, order, hidden, layers, epochs int,
	static bool) error {
	log := rt.Log
	switch mode {
	case "corpus", "stats":
		files := github.Mine(github.MinerConfig{Seed: seed, Repos: repos, FilesPerRepo: 8})
		c, err := corpus.BuildEx(files, corpus.BuildOpts{Static: static})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCorpusStats(c.Stats))
		if mode == "corpus" {
			fmt.Println("\n--- corpus sample (first kernel) ---")
			if len(c.Kernels) > 0 {
				fmt.Println(c.Kernels[0])
			}
		}
	case "train":
		cfg := coreConfig(repos, seed, backend, order, hidden, layers, epochs, static)
		log.Info("building corpus and training model", "backend", string(cfg.Backend))
		g, err := core.Build(cfg)
		if err != nil {
			return err
		}
		if modelF == "" {
			return fmt.Errorf("-mode train needs -model FILE")
		}
		if err := g.Model.SaveFile(modelF); err != nil {
			return err
		}
		log.Info("model written", "path", modelF)
	case "sample":
		var m *model.Model
		if modelF != "" {
			loaded, err := model.LoadFile(modelF)
			if err != nil {
				return err
			}
			m = loaded
		}
		cfg := coreConfig(repos, seed, backend, order, hidden, layers, epochs, static)
		var g *core.CLgen
		if m != nil {
			g = &core.CLgen{Model: m, Static: static}
		} else {
			log.Info("building corpus and training model", "backend", string(cfg.Backend))
			built, err := core.Build(cfg)
			if err != nil {
				return err
			}
			g = built
		}
		opts := model.SampleOpts{Temperature: temp}
		if free {
			opts.Seed = model.FreeSeed
		}
		kernels, stats, err := g.Synthesize(n, opts, seed+100)
		if err != nil {
			log.Warn("synthesis shortfall", "err", err)
		}
		for i, k := range kernels {
			fmt.Printf("// --- kernel %d ---\n%s\n\n", i+1, k)
		}
		log.Info("synthesis done", "accepted", stats.Accepted, "attempts", stats.Attempts,
			"accept_rate", fmt.Sprintf("%.0f%%", stats.AcceptRate()*100))
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

// coreConfig assembles the synthesis configuration from flags.
func coreConfig(repos int, seed int64, backend string, order, hidden, layers, epochs int,
	static bool) core.Config {
	return core.Config{
		Miner:        github.MinerConfig{Seed: seed, Repos: repos, FilesPerRepo: 8},
		Backend:      core.Backend(backend),
		NGramOrder:   order,
		LSTMHidden:   hidden,
		LSTMLayers:   layers,
		StaticChecks: static,
		LSTMTrain: nn.TrainConfig{
			Epochs: epochs, SeqLen: 64, LearnRate: 0.5, DecayEvery: 4,
			BatchSeqs: 1, Seed: seed,
		},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clgen:", err)
	os.Exit(1)
}

// Command cltrace analyzes the provenance journals the other binaries
// write with the shared -journal flag (see internal/journal): it turns a
// run's per-artifact lifecycle events back into the paper's funnel tables
// and gates run-to-run regressions in CI.
//
// Usage:
//
//	cltrace funnel [-json] run.jsonl
//	    §4.1 corpus discard breakdown, §4.3 sample acceptance, §5.2
//	    dynamic-checker verdicts, and per-stage latency percentiles.
//	    Runs journaled under -precise-features additionally render the
//	    feature-agreement table: per-feature mean |delta| and exact-match
//	    rate between the heuristic and analyzer-derived vectors.
//	    -json emits the same funnel as JSON with derived rates inlined.
//
//	cltrace show run.jsonl <id-prefix>
//	    Reconstruct one artifact's full history (events whose content-hash
//	    ID — or parent ID, for derived artifacts — starts with the prefix).
//
//	cltrace diff [-threshold pct] old.jsonl new.jsonl
//	    Compare two runs: artifact counts, acceptance rates, modeled
//	    runtimes, and (when journaled) the feature-agreement rate gate at
//	    the threshold (default 5%); wall-clock stage latencies are
//	    reported but never gated. Exits 1 on regression — identical-seed
//	    runs always pass, so this is the CI gate.
//
//	cltrace model report [-json] run.jsonl
//	    Learning-loop view of the journal: training curves (per-epoch
//	    loss/clip-rate from trained events) and evaluation summaries with
//	    per-suite confusion matrices (from predicted events).
//
//	cltrace model record -history h.jsonl run.jsonl
//	    Append the run's evaluation summaries as one history record.
//
//	cltrace model diff [-accuracy-pp pp] [-speedup-pct pct] h.jsonl
//	    Gate the newest history record against the median of comparable
//	    (same-machine) predecessors. Exits 1 when any evaluation's
//	    accuracy drops more than -accuracy-pp percentage points or its
//	    geomean speedup more than -speedup-pct percent.
//
//	cltrace model history h.jsonl
//	    Per-record accuracy/speedup trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"clgen/internal/journal"
	"clgen/internal/mlobs"
	"clgen/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "funnel":
		err = funnel(os.Args[2:])
	case "show":
		err = show(os.Args[2:])
	case "diff":
		var regressed bool
		regressed, err = diff(os.Args[2:])
		if err == nil && regressed {
			os.Exit(1)
		}
	case "model":
		var regressed bool
		regressed, err = model(os.Args[2:])
		if err == nil && regressed {
			os.Exit(1)
		}
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "cltrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cltrace:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cltrace funnel [-json] <journal.jsonl>
  cltrace show   <journal.jsonl> <id-prefix>
  cltrace diff   [-threshold pct] <old.jsonl> <new.jsonl>
  cltrace model  report [-json] <journal.jsonl>
  cltrace model  record -history <h.jsonl> <journal.jsonl>
  cltrace model  diff [-accuracy-pp pp] [-speedup-pct pct] <h.jsonl>
  cltrace model  history <h.jsonl>`)
}

// model dispatches the learning-loop subcommands. The bool mirrors diff:
// true means the regression gate tripped (exit 1, distinct from errors).
func model(args []string) (bool, error) {
	if len(args) < 1 {
		return false, fmt.Errorf("model needs a subcommand: report | record | diff | history")
	}
	switch args[0] {
	case "report":
		return false, modelReport(args[1:])
	case "record":
		return false, modelRecord(args[1:])
	case "diff":
		return modelDiff(args[1:])
	case "history":
		return false, modelHistory(args[1:])
	default:
		return false, fmt.Errorf("unknown model subcommand %q", args[0])
	}
}

func modelReport(args []string) error {
	fs := flag.NewFlagSet("model report", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("model report needs exactly one journal path")
	}
	events, err := journal.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := mlobs.Report(events)
	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Print(rep.Render())
	return nil
}

func modelRecord(args []string) error {
	fs := flag.NewFlagSet("model record", flag.ExitOnError)
	history := fs.String("history", "", "history JSONL to append the record to (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *history == "" {
		return fmt.Errorf("model record needs -history FILE")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("model record needs exactly one journal path")
	}
	events, err := journal.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rec := mlobs.BuildRecord(events, perf.GitRev())
	if len(rec.Evals) == 0 {
		return fmt.Errorf("journal %s has no predicted events to record", fs.Arg(0))
	}
	if err := mlobs.Append(*history, rec); err != nil {
		return err
	}
	fmt.Printf("recorded %d evaluation(s) to %s\n", len(rec.Evals), *history)
	return nil
}

func modelDiff(args []string) (bool, error) {
	fs := flag.NewFlagSet("model diff", flag.ExitOnError)
	accPP := fs.Float64("accuracy-pp", mlobs.DefaultAccuracyPP,
		"accuracy drop, in percentage points, that fails the gate")
	spdPct := fs.Float64("speedup-pct", mlobs.DefaultSpeedupPct,
		"relative geomean-speedup drop, in percent, that fails the gate")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 1 {
		return false, fmt.Errorf("model diff needs exactly one history path")
	}
	history, err := mlobs.ReadHistory(fs.Arg(0))
	if err != nil {
		return false, err
	}
	rep, err := mlobs.Diff(history, *accPP, *spdPct)
	if err != nil {
		return false, err
	}
	rep.Render(os.Stdout)
	return !rep.OK(), nil
}

func modelHistory(args []string) error {
	fs := flag.NewFlagSet("model history", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("model history needs exactly one history path")
	}
	history, err := mlobs.ReadHistory(fs.Arg(0))
	if err != nil {
		return err
	}
	mlobs.RenderHistory(os.Stdout, history)
	return nil
}

func funnel(args []string) error {
	fs := flag.NewFlagSet("funnel", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the funnel as JSON (counters plus derived rates)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("funnel needs exactly one journal path")
	}
	events, err := journal.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := journal.Funnel(events)
	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Print(rep.Render())
	return nil
}

func show(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("show needs a journal path and an id prefix")
	}
	events, err := journal.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	history := journal.History(events, fs.Arg(1))
	if len(history) == 0 {
		return fmt.Errorf("no events match id prefix %q", fs.Arg(1))
	}
	fmt.Print(journal.RenderHistory(history))
	return nil
}

func diff(args []string) (bool, error) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", journal.DefaultThresholdPct,
		"regression threshold: percent (counts, runtimes) or percentage points (rates)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("diff needs exactly two journal paths")
	}
	before, err := journal.ReadFile(fs.Arg(0))
	if err != nil {
		return false, err
	}
	after, err := journal.ReadFile(fs.Arg(1))
	if err != nil {
		return false, err
	}
	d := journal.Diff(before, after, *threshold)
	fmt.Print(d.Render())
	return !d.OK(), nil
}

package clgen_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"clgen/internal/analysis"
	"clgen/internal/clc"
	"clgen/internal/corpus"
	"clgen/internal/driver"
	"clgen/internal/experiments"
	"clgen/internal/features"
	"clgen/internal/github"
	"clgen/internal/telemetry"
)

// analysisBenchReport is the BENCH_analysis.json schema: the cost of the
// static analyzer on the corpus rejection filter (same mined file set,
// strict mode off vs on) and its payoff on the driver — dynamic checker
// executions eliminated by the pre-screen over a full reduced campaign.
type analysisBenchReport struct {
	Env                telemetry.EnvInfo   `json:"env"`
	Filter             []analysisBenchRow  `json:"corpus_filter"`
	PreScreen          analysisBenchDriver `json:"driver_prescreen"`
	Features           []featureBenchRow   `json:"feature_extraction"`
	Footprint          footprintBenchRow   `json:"footprint_analysis"`
	FootprintPreScreen footprintPreScreen  `json:"driver_prescreen_footprint"`
}

// footprintBenchRow records symbolic-footprint throughput over the
// accepted seed-corpus files: full Analyze including the footprint pass,
// plus how many pointer-argument bounds it proves on real code.
type footprintBenchRow struct {
	Files         int     `json:"files"`
	Kernels       int     `json:"kernels"`
	Args          int     `json:"args"`
	KnownArgs     int     `json:"known_args"`
	Seconds       float64 `json:"seconds"`
	KernelsPerSec float64 `json:"kernels_per_sec"`
}

// footprintPreScreen re-measures the direct pre-screen under
// -footprint-sizing: rescuable forecasts (oob-index, buffer-overrun)
// fall through to the dynamic checker, trading pre-screen skips for
// rescued kernels.
type footprintPreScreen struct {
	Checked        int `json:"checked"`
	PreScreenSkips int `json:"prescreen_skips"`
	RunsSaved      int `json:"prescreen_runs_saved"`
	Resizes        int `json:"resizes"`
	Rescued        int `json:"rescued"`
}

// featureBenchRow records one extraction mode's throughput over the
// accepted seed-corpus files: the heuristic row is the baseline, the
// precise row is the cost of routing extraction through the analyzer's
// CFG+dataflow machinery under -precise-features.
type featureBenchRow struct {
	Precise       bool    `json:"precise"`
	Files         int     `json:"files"`
	Kernels       int     `json:"kernels"`
	Seconds       float64 `json:"seconds"`
	KernelsPerSec float64 `json:"kernels_per_sec"`
}

type analysisBenchRow struct {
	Static       bool    `json:"static"`
	Files        int     `json:"files"`
	Accepted     int     `json:"accepted"`
	Seconds      float64 `json:"seconds"`
	FilesPerSec  float64 `json:"files_per_sec"`
	StaticReject int     `json:"static_rejected"`
}

type analysisBenchDriver struct {
	// Kernel executions over the same reduced campaign with -static-checks
	// off vs on; the difference is the pipeline-level saving (the sampler's
	// strict filter stops statically-faulty kernels before the driver).
	KernelRunsOff int `json:"kernel_runs_static_off"`
	KernelRunsOn  int `json:"kernel_runs_static_on"`
	// Direct pre-screen measurement: every kernel the static-off campaign
	// synthesized, checked once with StaticPreScreen. Skips counts kernels
	// whose forecast let the driver skip the checker entirely; RunsSaved is
	// the four-execution budget those skips avoided.
	Checked        int `json:"prescreen_checked"`
	PreScreenSkips int `json:"prescreen_skips"`
	RunsSaved      int `json:"prescreen_runs_saved"`
}

// TestAnalysisBenchSnapshot measures the static analyzer's filter
// overhead and pre-screen savings and writes BENCH_analysis.json. Gated
// behind BENCH_ANALYSIS=1 so plain `go test` stays fast; run via `make
// bench-snapshot`.
func TestAnalysisBenchSnapshot(t *testing.T) {
	if os.Getenv("BENCH_ANALYSIS") == "" {
		t.Skip("set BENCH_ANALYSIS=1 to record the static-analysis snapshot")
	}
	report := analysisBenchReport{Env: telemetry.Env()}

	// Filter throughput: identical mined input, strict mode off vs on.
	files := github.Mine(github.MinerConfig{Seed: 3, Repos: 120, FilesPerRepo: 8})
	for _, static := range []bool{false, true} {
		start := time.Now()
		c, err := corpus.BuildEx(files, corpus.BuildOpts{Static: static})
		if err != nil {
			t.Fatal(err)
		}
		sec := time.Since(start).Seconds()
		rejected := 0
		for reason, n := range c.Stats.Reasons {
			if len(reason) > 7 && reason[:7] == "static:" {
				rejected += n
			}
		}
		report.Filter = append(report.Filter, analysisBenchRow{
			Static: static, Files: len(files), Accepted: c.Stats.AcceptedFiles,
			Seconds: sec, FilesPerSec: float64(len(files)) / sec, StaticReject: rejected,
		})
	}

	// Feature-extraction throughput: both modes over every accepted file
	// of the same mined set (parsed once up front so the rows time
	// extraction, not the frontend).
	var parsed []*clc.File
	for _, cf := range files {
		res := corpus.Filter(cf.Text, true)
		if res.OK {
			parsed = append(parsed, res.File)
		}
	}
	for _, precise := range []bool{false, true} {
		start := time.Now()
		kernels := 0
		for _, f := range parsed {
			fs, err := features.ExtractFileMode(f, precise)
			if err != nil {
				t.Fatal(err)
			}
			kernels += len(fs)
		}
		sec := time.Since(start).Seconds()
		report.Features = append(report.Features, featureBenchRow{
			Precise: precise, Files: len(parsed), Kernels: kernels,
			Seconds: sec, KernelsPerSec: float64(kernels) / sec,
		})
	}

	// Pre-screen savings: the same reduced campaign with the analyzer off
	// and on; counter deltas give the dynamic executions eliminated.
	reg := telemetry.Default()
	campaign := func(static bool) (*experiments.World, map[string]int64) {
		cfg := experiments.TestConfig()
		cfg.Quiet = true
		cfg.StaticChecks = static
		before := reg.Snapshot().Counters
		w, err := experiments.BuildWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		after := reg.Snapshot().Counters
		d := map[string]int64{}
		for name := range after {
			d[name] = after[name] - before[name]
		}
		return w, d
	}
	offWorld, off := campaign(false)
	_, on := campaign(true)
	report.PreScreen.KernelRunsOff = int(off["driver_kernel_runs_total"])
	report.PreScreen.KernelRunsOn = int(on["driver_kernel_runs_total"])

	// Direct pre-screen measurement over the static-off campaign's kernel
	// set — the population a -static-checks cldrive faces.
	before := reg.Snapshot().Counters
	for _, src := range offWorld.Synth {
		k, err := driver.Load(src)
		if err != nil {
			continue
		}
		report.PreScreen.Checked++
		driver.Check(k, 256, 1, driver.RunConfig{Static: driver.StaticPreScreen})
	}
	after := reg.Snapshot().Counters
	report.PreScreen.PreScreenSkips = int(after["driver_static_prescreen_skips_total"] -
		before["driver_static_prescreen_skips_total"])
	report.PreScreen.RunsSaved = int(after["driver_static_prescreen_runs_saved_total"] -
		before["driver_static_prescreen_runs_saved_total"])

	// Footprint-analysis throughput over the same accepted files.
	start := time.Now()
	for _, f := range parsed {
		fps := analysis.Footprints(f)
		report.Footprint.Kernels += len(fps)
		for _, args := range fps {
			report.Footprint.Args += len(args)
			for _, a := range args {
				if a.Known() {
					report.Footprint.KnownArgs++
				}
			}
		}
	}
	sec := time.Since(start).Seconds()
	report.Footprint.Files = len(parsed)
	report.Footprint.Seconds = sec
	report.Footprint.KernelsPerSec = float64(report.Footprint.Kernels) / sec

	// The same direct pre-screen under -footprint-sizing.
	driver.SetFootprintSizing(true)
	defer driver.SetFootprintSizing(false)
	before = reg.Snapshot().Counters
	for _, src := range offWorld.Synth {
		k, err := driver.Load(src)
		if err != nil {
			continue
		}
		report.FootprintPreScreen.Checked++
		driver.Check(k, 256, 1, driver.RunConfig{Static: driver.StaticPreScreen})
	}
	after = reg.Snapshot().Counters
	delta := func(name string) int { return int(after[name] - before[name]) }
	report.FootprintPreScreen.PreScreenSkips = delta("driver_static_prescreen_skips_total")
	report.FootprintPreScreen.RunsSaved = delta("driver_static_prescreen_runs_saved_total")
	report.FootprintPreScreen.Resizes = delta("driver_footprint_resizes_total")
	report.FootprintPreScreen.Rescued = delta("driver_footprint_rescued_total")

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_analysis.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "static-analysis bench snapshot written to BENCH_analysis.json")
}

module clgen

go 1.22
